/**
 * @file
 * Crash tolerance of the sweep harness:
 *
 *  - a cell whose point throws (watchdog violation) is reported
 *    FAILED with a repro string and the remaining cells still run;
 *  - the per-cell checkpoint makes a sweep resumable: a partial
 *    checkpoint (including one left by a SIGKILL mid-sweep) is
 *    picked up by the next run and the final cache CSV is
 *    byte-identical to an uninterrupted sweep;
 *  - a truncated or corrupted cache/checkpoint is detected,
 *    discarded and recovered from, never served.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "clearsim/clearsim.hh"
#include "fault/fault_repro.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

/** Set an environment variable for one scope, then restore it. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value)
        : name_(name)
    {
        if (const char *old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        ::setenv(name, value.c_str(), 1);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** A small, benign sweep (4 cells, no faults). */
SweepOptions
benignSweep()
{
    SweepOptions opts;
    opts.workloads = {"mwobject", "arrayswap"};
    opts.configs = {"B", "C"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    opts.jobs = 1;
    return opts;
}

/**
 * A forced-abort storm against an inexhaustible retry budget: every
 * point of this config livelocks and the watchdog throws.
 */
constexpr char kLivelockConfig[] =
    "B:fault.forced-abort=1000:fault.watchdog=1"
    ":fault.horizon=20000";

TEST(SweepCrashTest, FailingCellDoesNotStopTheSweep)
{
    SweepOptions opts;
    opts.workloads = {"mwobject"};
    opts.configs = {"B", kLivelockConfig};
    opts.retryLimits = {1000000};
    opts.seeds = 1;
    opts.params.opsPerThread = 4;
    opts.jobs = 2;

    unsigned cells_reported = 0;
    const auto results =
        runSweep(opts, {}, [&cells_reported](const CellResult &) {
            ++cells_reported;
        });
    EXPECT_EQ(cells_reported, 2u);
    ASSERT_EQ(results.size(), 2u);

    const CellResult &ok = results.at({"mwobject", "B"});
    EXPECT_FALSE(ok.failed) << ok.error;
    EXPECT_GT(ok.htm.commits, 0u);

    const CellResult &bad =
        results.at({"mwobject", kLivelockConfig});
    ASSERT_TRUE(bad.failed);
    EXPECT_NE(bad.error.find("global-progress"), std::string::npos)
        << bad.error;

    // The repro string replays the exact failing point: it names
    // the per-point config, retry limit included.
    ReproSpec spec;
    std::string error;
    ASSERT_TRUE(parseReproString(bad.repro, spec, &error))
        << error << " in " << bad.repro;
    EXPECT_EQ(spec.workload, "mwobject");
    EXPECT_NE(spec.config.find(kLivelockConfig), std::string::npos);
    EXPECT_NE(spec.config.find(":maxRetries=1000000"),
              std::string::npos)
        << spec.config;
}

TEST(SweepCrashTest, TruncatedCacheIsDiscarded)
{
    const std::string path = "/tmp/clearsim_trunc_cache.csv";
    SweepOptions opts = benignSweep();
    const std::uint64_t hash = sweepOptionsHash(opts);

    // A valid single-cell cache loads...
    CellSummary cell;
    cell.workload = "mwobject";
    cell.config = "B";
    cell.commits = 7;
    SweepSummary summary;
    summary[{cell.workload, cell.config}] = cell;
    saveSweepCache(path, hash, summary);
    SweepSummary loaded;
    ASSERT_TRUE(loadSweepCache(path, hash, loaded));
    ASSERT_EQ(loaded.size(), 1u);

    // ...but any truncation (as a crash without the atomic rename
    // could have produced) poisons the whole file.
    const std::string bytes = readFile(path);
    for (const std::size_t keep :
         {bytes.size() - 2, bytes.size() / 2, std::size_t{3}}) {
        std::ofstream out(path, std::ios::trunc);
        out << bytes.substr(0, keep);
        out.close();
        EXPECT_FALSE(loadSweepCache(path, hash, loaded))
            << "truncated to " << keep << " bytes";
        EXPECT_TRUE(loaded.empty());
    }
    std::remove(path.c_str());
}

TEST(SweepCrashTest, CheckpointResumeIsByteIdentical)
{
    const std::string ref_path = "/tmp/clearsim_resume_ref.csv";
    const std::string res_path = "/tmp/clearsim_resume_part.csv";
    std::remove(ref_path.c_str());
    std::remove(res_path.c_str());
    const SweepOptions opts = benignSweep();
    const std::uint64_t hash = sweepOptionsHash(opts);

    // Reference: one uninterrupted sweep.
    std::string ref_bytes;
    {
        ScopedEnv env("CLEARSIM_CACHE", ref_path);
        sweepWithCache(opts);
        ref_bytes = readFile(ref_path);
        ASSERT_FALSE(ref_bytes.empty());
    }

    // Resumed: seed the checkpoint with two already-done cells (as
    // a killed run would have left behind), then sweep.
    SweepSummary done;
    ASSERT_TRUE(loadSweepCache(ref_path, hash, done));
    ASSERT_EQ(done.size(), 4u);
    SweepSummary partial;
    unsigned taken = 0;
    for (const auto &[key, cell] : done) {
        if (taken++ == 2)
            break;
        partial[key] = cell;
    }
    saveSweepCache(sweepCheckpointPath(res_path), hash, partial);
    {
        ScopedEnv env("CLEARSIM_CACHE", res_path);
        sweepWithCache(opts);
    }

    EXPECT_EQ(readFile(res_path), ref_bytes);
    // The checkpoint has served its purpose and is gone.
    EXPECT_FALSE(fileExists(sweepCheckpointPath(res_path)));

    // A truncated (torn) checkpoint is discarded, not trusted: the
    // sweep restarts from scratch and still converges byte-exactly.
    const std::string trunc_path = "/tmp/clearsim_resume_trunc.csv";
    std::remove(trunc_path.c_str());
    {
        std::ofstream out(sweepCheckpointPath(trunc_path),
                          std::ios::trunc);
        out << ref_bytes.substr(0, ref_bytes.size() / 2);
    }
    {
        ScopedEnv env("CLEARSIM_CACHE", trunc_path);
        sweepWithCache(opts);
    }
    EXPECT_EQ(readFile(trunc_path), ref_bytes);

    std::remove(ref_path.c_str());
    std::remove(res_path.c_str());
    std::remove(trunc_path.c_str());
}

TEST(SweepCrashTest, FinishedSweepLeavesOnlyTheFinalCsv)
{
    // A SIGKILL in the window between the final cache rename and
    // the checkpoint unlink leaves a valid cache next to a stale
    // .ckpt. Later runs take the cache-hit early return, which
    // historically never cleaned up — the stale checkpoint lived
    // forever. Any clean completion (fresh run or cache hit) must
    // leave the directory holding the final CSV and nothing else.
    const std::string dir = "/tmp/clearsim_stale_ckpt_dir";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string cache = dir + "/sweep.csv";
    const SweepOptions opts = benignSweep();

    {
        ScopedEnv env("CLEARSIM_CACHE", cache);
        sweepWithCache(opts);
    }
    const std::string bytes = readFile(cache);
    ASSERT_FALSE(bytes.empty());

    // Plant the stale checkpoint a kill window would have left.
    {
        std::ofstream out(sweepCheckpointPath(cache),
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    {
        ScopedEnv env("CLEARSIM_CACHE", cache);
        sweepWithCache(opts); // cache hit — must still clean up
    }
    EXPECT_EQ(readFile(cache), bytes);

    std::vector<std::string> left;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        left.push_back(entry.path().filename().string());
    EXPECT_EQ(left, std::vector<std::string>{"sweep.csv"});

    std::filesystem::remove_all(dir);
}

TEST(SweepCrashTest, SigkilledSweepResumesFromCheckpoint)
{
    const std::string ref_path = "/tmp/clearsim_kill_ref.csv";
    const std::string kill_path = "/tmp/clearsim_kill_run.csv";
    const std::string ckpt = sweepCheckpointPath(kill_path);
    std::remove(ref_path.c_str());
    std::remove(kill_path.c_str());
    std::remove(ckpt.c_str());
    const SweepOptions opts = benignSweep();

    // Reference bytes from an uninterrupted sweep.
    std::string ref_bytes;
    {
        ScopedEnv env("CLEARSIM_CACHE", ref_path);
        sweepWithCache(opts);
        ref_bytes = readFile(ref_path);
        ASSERT_FALSE(ref_bytes.empty());
    }

    // Child: run the sweep and SIGKILL ourselves the moment the
    // checkpoint holds a completed cell — an arbitrary, ungraceful
    // death mid-sweep.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("CLEARSIM_CACHE", kill_path.c_str(), 1);
        std::thread watcher([&ckpt] {
            for (;;) {
                std::ifstream in(ckpt);
                std::string text(
                    (std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
                // Header plus at least one complete data row.
                if (!text.empty() && !text.ends_with('\n'))
                    text.clear();
                std::size_t lines = 0;
                for (char c : text)
                    lines += (c == '\n') ? 1 : 0;
                if (lines >= 2)
                    ::raise(SIGKILL);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
        watcher.detach();
        sweepWithCache(opts);
        ::_exit(0); // finished before the kill landed: also fine
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed =
        WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool finished = WIFEXITED(status) &&
                          WEXITSTATUS(status) == 0;
    ASSERT_TRUE(killed || finished) << "status " << status;

    // Resume (or just reload) in this process: the final cache must
    // be byte-identical to the uninterrupted reference.
    {
        ScopedEnv env("CLEARSIM_CACHE", kill_path);
        sweepWithCache(opts);
    }
    EXPECT_EQ(readFile(kill_path), ref_bytes);

    std::remove(ref_path.c_str());
    std::remove(kill_path.c_str());
}

} // namespace
} // namespace clearsim
