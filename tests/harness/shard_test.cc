/**
 * @file
 * planShards() tests: the fabric's byte-identity contract rests on
 * the shard plan being a pure function of (options hash, shard
 * count), so coordinator and worker can rebuild identical plans in
 * separate processes from a shard *index* alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "harness/shard.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"

namespace clearsim
{
namespace
{

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap", "stack"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    return opts;
}

/** All cells of a plan, flattened in shard-then-position order. */
std::vector<SweepKey>
flatten(const ShardPlan &plan)
{
    std::vector<SweepKey> all;
    for (const std::vector<SweepKey> &shard : plan.shards)
        all.insert(all.end(), shard.begin(), shard.end());
    return all;
}

TEST(ShardPlan, IsDeterministic)
{
    const SweepOptions opts = smallSweep();
    const ShardPlan a = planShards(opts, 2);
    const ShardPlan b = planShards(opts, 2);
    EXPECT_EQ(a.optionsHash, b.optionsHash);
    EXPECT_EQ(a.shardCount, b.shardCount);
    EXPECT_EQ(a.shards, b.shards);
}

TEST(ShardPlan, IgnoresTheJobCount)
{
    // Coordinator and worker may run with different thread counts;
    // the partition must not notice.
    SweepOptions serial = smallSweep();
    serial.jobs = 1;
    SweepOptions wide = smallSweep();
    wide.jobs = 16;
    const ShardPlan a = planShards(serial, 3);
    const ShardPlan b = planShards(wide, 3);
    EXPECT_EQ(a.optionsHash, b.optionsHash);
    EXPECT_EQ(a.shards, b.shards);
}

TEST(ShardPlan, PartitionsTheGridExactly)
{
    const SweepOptions opts = smallSweep();
    const SweepGrid grid(opts, {});
    for (unsigned requested : {1u, 2u, 3u, 4u, 5u}) {
        const ShardPlan plan = planShards(opts, requested);
        EXPECT_EQ(sweepOptionsHash(opts), plan.optionsHash);
        EXPECT_EQ(grid.cells().size(), plan.totalCells());

        // No shard is empty, and no cell appears twice.
        std::set<SweepKey> seen;
        for (const std::vector<SweepKey> &shard : plan.shards) {
            EXPECT_FALSE(shard.empty());
            for (const SweepKey &key : shard)
                EXPECT_TRUE(seen.insert(key).second)
                    << key.first << "," << key.second;
        }

        // Union equals the grid's cell set.
        const std::set<SweepKey> expected(grid.cells().begin(),
                                          grid.cells().end());
        EXPECT_EQ(expected, seen) << "requested=" << requested;
    }
}

TEST(ShardPlan, PreservesGridOrderWithinEachShard)
{
    // Round-robin dealing in grid order means each shard's cells
    // are a subsequence of the grid order — the merge can rely on
    // map ordering alone, but the dealing should stay stable.
    const SweepOptions opts = smallSweep();
    const SweepGrid grid(opts, {});
    const ShardPlan plan = planShards(opts, 2);
    for (const std::vector<SweepKey> &shard : plan.shards) {
        std::vector<std::size_t> positions;
        for (const SweepKey &key : shard) {
            const auto it = std::find(grid.cells().begin(),
                                      grid.cells().end(), key);
            ASSERT_NE(grid.cells().end(), it);
            positions.push_back(static_cast<std::size_t>(
                it - grid.cells().begin()));
        }
        EXPECT_TRUE(
            std::is_sorted(positions.begin(), positions.end()));
    }
}

TEST(ShardPlan, ClampsTheRequestToTheCellCount)
{
    const SweepOptions opts = smallSweep();
    const SweepGrid grid(opts, {});
    const std::size_t cells = grid.cells().size();

    const ShardPlan clamped =
        planShards(opts, static_cast<unsigned>(cells) + 100);
    EXPECT_EQ(cells, clamped.shardCount);
    for (const std::vector<SweepKey> &shard : clamped.shards)
        EXPECT_EQ(1u, shard.size());
}

TEST(ShardPlan, ZeroMeansOneShardPerCell)
{
    const SweepOptions opts = smallSweep();
    const SweepGrid grid(opts, {});
    const ShardPlan plan = planShards(opts, 0);
    EXPECT_EQ(grid.cells().size(), plan.shardCount);
    for (const std::vector<SweepKey> &shard : plan.shards)
        EXPECT_EQ(1u, shard.size());
}

TEST(ShardPlan, DifferentSweepsRotateDifferently)
{
    // The rotation comes from the options hash, so two different
    // sweeps (different hash) generally deal their first cell to
    // different shards. Pin only that the hash feeds in: same
    // options, same rotation.
    const SweepOptions opts = smallSweep();
    SweepOptions other = smallSweep();
    other.seeds = 5;
    EXPECT_NE(sweepOptionsHash(opts), sweepOptionsHash(other));
    const ShardPlan a = planShards(opts, 2);
    const ShardPlan b = planShards(other, 2);
    // Cell sets match (same grid), but hashes differ.
    EXPECT_NE(a.optionsHash, b.optionsHash);
    EXPECT_EQ(flatten(a).size(), flatten(b).size());
}

} // namespace
} // namespace clearsim
