/**
 * @file
 * Determinism contract of the fault layer: a fault-injected run is
 * a pure function of (config spec, fault.seed). Sweeps under the
 * canned fault plans must be byte-identical across CLEARSIM_JOBS,
 * identical fault.seed values must reproduce identical runs,
 * different seeds must actually change the fault schedule, and a
 * zero fault plan must be cycle-identical to no fault layer at all.
 *
 * Registered under the ctest label "determinism"
 * (ctest -L determinism).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "clearsim/clearsim.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

SweepOptions
faultSweep()
{
    SweepOptions opts;
    opts.workloads = {"mwobject", "arrayswap"};
    opts.configs = {"B+faults-nack-storm:fault.seed=5",
                    "C+faults-delay-jitter:fault.seed=5",
                    "C+faults-forced-abort:fault.seed=5"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    opts.params.opsPerThread = 4;
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
expectIdenticalCells(const CellResult &a, const CellResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.bestRetryLimit, b.bestRetryLimit);
    EXPECT_EQ(a.cycles, b.cycles); // bit-exact, not NEAR
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    EXPECT_EQ(a.htm.aborts, b.htm.aborts);
    EXPECT_EQ(a.htm.commitsByMode, b.htm.commitsByMode);
    EXPECT_EQ(a.htm.abortsByCategory, b.htm.abortsByCategory);
}

TEST(FaultDeterminismTest, FaultSweepIndependentOfJobCount)
{
    SweepOptions opts = faultSweep();
    opts.jobs = 1;
    const auto serial = runSweep(opts);
    opts.jobs = 4;
    const auto parallel = runSweep(opts);

    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[key, cell] : serial) {
        ASSERT_TRUE(parallel.count(key))
            << key.first << "/" << key.second;
        // The fault plans preserve liveness: no cell may fail.
        EXPECT_FALSE(cell.failed) << cell.error;
        expectIdenticalCells(cell, parallel.at(key));
    }
}

TEST(FaultDeterminismTest, FaultSweepCsvBytesIdenticalAcrossJobs)
{
    SweepOptions opts = faultSweep();

    opts.jobs = 1;
    SweepSummary serial;
    for (const auto &[key, cell] : runSweep(opts))
        serial[key] = CellSummary::fromCell(cell);

    opts.jobs = 4;
    SweepSummary parallel;
    for (const auto &[key, cell] : runSweep(opts))
        parallel[key] = CellSummary::fromCell(cell);

    const std::string path_a = "/tmp/clearsim_fault_det_serial.csv";
    const std::string path_b =
        "/tmp/clearsim_fault_det_parallel.csv";
    const std::uint64_t hash = sweepOptionsHash(opts);
    saveSweepCache(path_a, hash, serial);
    saveSweepCache(path_b, hash, parallel);

    const std::string bytes_a = readFile(path_a);
    const std::string bytes_b = readFile(path_b);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(FaultDeterminismTest, SameFaultSeedSameRun)
{
    const SystemConfig cfg = makeConfigFromSpec(
        "C+faults-nack-storm:fault.seed=11");
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 6;
    const RunResult a = runOnce(cfg, "mwobject", params);
    const RunResult b = runOnce(cfg, "mwobject", params);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    EXPECT_EQ(a.htm.aborts, b.htm.aborts);
    EXPECT_EQ(a.htm.commitsByMode, b.htm.commitsByMode);
    EXPECT_EQ(a.htm.abortsByCategory, b.htm.abortsByCategory);
}

TEST(FaultDeterminismTest, DifferentFaultSeedDifferentSchedule)
{
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 6;
    auto fingerprint = [&params](std::uint64_t fault_seed) {
        const SystemConfig cfg = makeConfigFromSpec(
            "C+faults-nack-storm:fault.seed=" +
            std::to_string(fault_seed));
        const RunResult run = runOnce(cfg, "mwobject", params);
        return std::make_tuple(run.cycles, run.htm.aborts,
                               run.energy.total());
    };
    // Three distinct fault seeds cannot all collide unless the
    // seed is being ignored.
    const auto f1 = fingerprint(1);
    const auto f2 = fingerprint(2);
    const auto f3 = fingerprint(3);
    EXPECT_FALSE(f1 == f2 && f2 == f3);
}

TEST(FaultDeterminismTest, ZeroPlanIsCycleIdenticalToNoFaultLayer)
{
    // fault.seed alone activates nothing: the run must be
    // bit-identical to the plain config (System installs no
    // injector at all).
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 6;
    const RunResult plain =
        runOnce(makeConfigFromSpec("C"), "mwobject", params);
    const RunResult seeded = runOnce(
        makeConfigFromSpec("C:fault.seed=123"), "mwobject", params);
    EXPECT_EQ(plain.cycles, seeded.cycles);
    EXPECT_EQ(plain.htm.commits, seeded.htm.commits);
    EXPECT_EQ(plain.htm.aborts, seeded.htm.aborts);
    EXPECT_EQ(plain.htm.commitsByMode, seeded.htm.commitsByMode);
    EXPECT_EQ(plain.energy.total(), seeded.energy.total());
}

} // namespace
} // namespace clearsim
