/**
 * @file
 * The contract of the parallel sweep executor: CLEARSIM_JOBS only
 * changes wall-clock time, never results. A sweep run serially
 * (jobs = 1) and the same sweep fanned out over a worker pool
 * (jobs = 4) must produce identical CellResults and byte-identical
 * sweep-cache CSVs.
 *
 * Registered under the ctest label "determinism"
 * (ctest -L determinism).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "clearsim/clearsim.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.workloads = {"mwobject", "arrayswap"};
    // "A" rides along so the adaptive capture pass is under the
    // same jobs-independence contract as the static presets.
    opts.configs = {"B", "C", "A"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
expectIdenticalCells(const CellResult &a, const CellResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.bestRetryLimit, b.bestRetryLimit);
    EXPECT_EQ(a.cycles, b.cycles); // bit-exact, not NEAR
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.discoveryShare, b.discoveryShare);
    EXPECT_EQ(a.numCores, b.numCores);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    EXPECT_EQ(a.htm.aborts, b.htm.aborts);
    EXPECT_EQ(a.htm.commitsByMode, b.htm.commitsByMode);
    EXPECT_EQ(a.htm.abortsByCategory, b.htm.abortsByCategory);
    EXPECT_EQ(a.htm.commitsByRetries.total(),
              b.htm.commitsByRetries.total());
    EXPECT_EQ(a.htm.commitsByRetries.count(0),
              b.htm.commitsByRetries.count(0));
    EXPECT_EQ(a.htm.commitsByRetries.count(1),
              b.htm.commitsByRetries.count(1));
    EXPECT_EQ(a.htm.fallbackCommitRetries.total(),
              b.htm.fallbackCommitRetries.total());
    EXPECT_EQ(a.htm.committedUops, b.htm.committedUops);
    EXPECT_EQ(a.htm.abortedUops, b.htm.abortedUops);
}

TEST(ParallelSweepTest, ResultsIndependentOfJobCount)
{
    SweepOptions opts = smallSweep();
    opts.jobs = 1;
    const auto serial = runSweep(opts);
    opts.jobs = 4;
    const auto parallel = runSweep(opts);

    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &[key, cell] : serial) {
        ASSERT_TRUE(parallel.count(key))
            << key.first << "/" << key.second;
        expectIdenticalCells(cell, parallel.at(key));
    }
}

TEST(ParallelSweepTest, CacheCsvBytesIdenticalAcrossJobCounts)
{
    SweepOptions opts = smallSweep();

    opts.jobs = 1;
    SweepSummary serial;
    for (const auto &[key, cell] : runSweep(opts))
        serial[key] = CellSummary::fromCell(cell);

    opts.jobs = 4;
    SweepSummary parallel;
    for (const auto &[key, cell] : runSweep(opts))
        parallel[key] = CellSummary::fromCell(cell);

    const std::string path_a = "/tmp/clearsim_det_serial.csv";
    const std::string path_b = "/tmp/clearsim_det_parallel.csv";
    const std::uint64_t hash = sweepOptionsHash(opts);
    saveSweepCache(path_a, hash, serial);
    saveSweepCache(path_b, hash, parallel);

    const std::string bytes_a = readFile(path_a);
    const std::string bytes_b = readFile(path_b);
    ASSERT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, bytes_b);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(ParallelSweepTest, RunCellIndependentOfJobCount)
{
    SweepOptions opts = smallSweep();
    opts.jobs = 1;
    const CellResult serial = runCell("C", "mwobject", opts);
    opts.jobs = 3;
    const CellResult parallel = runCell("C", "mwobject", opts);
    expectIdenticalCells(serial, parallel);
}

} // namespace
} // namespace clearsim
