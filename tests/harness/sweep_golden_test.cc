/**
 * @file
 * Behaviour-preservation proof for the policy-layer refactor: the
 * sweep-cache CSV of the four B/P/C/W presets must be byte-identical
 * to a golden file generated with the pre-refactor code
 * (tests/data/sweep_golden.csv). Any change to retry decisions,
 * conflict arbitration, backoff timing or CSV formatting shows up
 * as a diff here.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/runner.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(SweepGoldenTest, PresetSweepCsvIsByteIdenticalToGolden)
{
    // The exact options the golden file was generated with.
    SweepOptions opts;
    opts.configs = {"B", "P", "C", "W"};
    opts.workloads = {"bitcoin", "bst"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    opts.params.opsPerThread = 8;
    opts.params.seed = 42;

    const auto cells = runSweep(opts);
    SweepSummary summary;
    for (const auto &[key, cell] : cells)
        summary[key] = CellSummary::fromCell(cell);

    const std::string path =
        testing::TempDir() + "clearsim_sweep_golden_check.csv";
    saveSweepCache(path, sweepOptionsHash(opts), summary);

    const std::string golden =
        readFile(std::string(CLEARSIM_TEST_DATA_DIR) +
                 "/sweep_golden.csv");
    const std::string fresh = readFile(path);
    std::remove(path.c_str());

    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(fresh, golden)
        << "sweep results diverged from the pre-refactor golden "
           "file; the B/P/C/W presets are no longer "
           "behaviour-preserving";
}

} // namespace
} // namespace clearsim
