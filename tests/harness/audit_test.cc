/**
 * @file
 * Tests of the sweep-scale mispredict audit: grid arithmetic, the
 * clearsim-audit-v1 golden bytes, the false-DOOMED acceptance
 * scenario (a CAPACITY-DOOMED verdict under a squeezed ALT that a
 * single-threaded run never cashes in), byte-identical mispredict
 * replay, the grid identity hash, and the parent-directory-creating
 * JSON writer. Regenerate the golden after intentional schema or
 * audit changes with:
 *
 *   clearsim_audit --workload queue,bst --config C --retries 1,4 \
 *       --seeds 2 --ops 8 --threads 4 --scale 1 --seed 42 --quiet \
 *       --json tests/data/audit_golden.json
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/audit.hh"

namespace clearsim
{
namespace
{

/** The pinned golden grid (the regeneration command's flags). */
AuditOptions
goldenOptions()
{
    AuditOptions opts;
    opts.configs = {"C"};
    opts.workloads = {"queue", "bst"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    opts.params.threads = 4;
    opts.params.opsPerThread = 8;
    opts.params.scale = 1;
    opts.params.seed = 42;
    opts.jobs = 1;
    return opts;
}

/** The ISSUE acceptance grid: ALT squeezed to 8, one thread. */
AuditOptions
altSqueezeOptions()
{
    AuditOptions opts;
    opts.configs = {"C:altEntries=8"};
    opts.workloads = {"sorted-list"};
    opts.retryLimits = {4};
    opts.seeds = 1;
    opts.params.threads = 1;
    opts.params.opsPerThread = 16;
    opts.params.scale = 1;
    opts.params.seed = 42;
    opts.jobs = 1;
    return opts;
}

TEST(Audit, GridArithmeticIsConsistent)
{
    const AuditResult result = runAudit(goldenOptions());
    ASSERT_TRUE(result.failures.empty());
    // configs x workloads x retries x seeds finished runs.
    EXPECT_EQ(result.runs, 1u * 2u * 2u * 2u);

    std::uint64_t cells = 0;
    for (unsigned p = 0; p < kNumVerdictClasses; ++p)
        for (unsigned a = 0; a < kNumVerdictClasses; ++a)
            cells += result.confusion[p][a];
    EXPECT_EQ(cells, result.regionInstances);
    EXPECT_GT(result.regionInstances, 0u);

    for (unsigned c = 0; c < kNumVerdictClasses; ++c) {
        const AuditClassStats &stats = result.classes[c];
        std::uint64_t predicted = 0, actual = 0;
        for (unsigned a = 0; a < kNumVerdictClasses; ++a) {
            predicted += result.confusion[c][a];
            actual += result.confusion[a][c];
        }
        EXPECT_EQ(stats.predicted, predicted);
        EXPECT_EQ(stats.actual, actual);
        EXPECT_EQ(stats.truePositives, result.confusion[c][c]);
        if (predicted != 0) {
            EXPECT_EQ(stats.precisionPermille,
                      stats.truePositives * 1000 / predicted);
        }
        if (actual != 0) {
            EXPECT_EQ(stats.recallPermille,
                      stats.truePositives * 1000 / actual);
        }
        EXPECT_LE(stats.precisionPermille, 1000u);
        EXPECT_LE(stats.recallPermille, 1000u);
    }
}

TEST(AuditGolden, MatchesCommittedDocument)
{
    const std::string path =
        std::string(CLEARSIM_TEST_DATA_DIR) + "/audit_golden.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();

    EXPECT_EQ(auditJsonString(runAudit(goldenOptions())),
              buffer.str())
        << "audit output drifted from " << path
        << " — regenerate it if the change is intentional "
           "(command in this file's header)";
}

TEST(AuditGolden, AuditIsByteStable)
{
    EXPECT_EQ(auditJsonString(runAudit(goldenOptions())),
              auditJsonString(runAudit(goldenOptions())));
}

TEST(Audit, AltSqueezeYieldsDetectedFalseDoomed)
{
    const AuditResult result = runAudit(altSqueezeOptions());
    ASSERT_TRUE(result.failures.empty());

    // The analyzer dooms the list regions for an 8-entry ALT, but a
    // single-threaded run commits speculatively without ever
    // locking the cache: the doom never materializes and the
    // checker must say so, blaming the ALT premise.
    unsigned false_doomed = 0;
    for (const AuditMispredict &entry : result.mispredicts) {
        if (entry.record.kind != MispredictKind::FalseDoomed)
            continue;
        ++false_doomed;
        EXPECT_EQ(entry.record.premise, PremiseId::CapAlt);
        EXPECT_EQ(entry.record.verdict, Verdict::CapacityDoomed);
        EXPECT_FALSE(entry.record.repro.empty());
    }
    EXPECT_GE(false_doomed, 1u);

    // Every false-DOOMED pc gets a Clear-restoring (=0) override
    // suggestion keyed on the base spec.
    ASSERT_FALSE(result.suggestedOverrides.empty());
    for (const SuggestedOverride &suggestion :
         result.suggestedOverrides) {
        EXPECT_EQ(suggestion.action, 0u);
        EXPECT_EQ(suggestion.spec.rfind("C:altEntries=8:adapt.pc0x",
                                        0),
                  0u)
            << suggestion.spec;
    }
}

TEST(Audit, EveryMispredictReplaysByteIdentically)
{
    const AuditOptions opts = altSqueezeOptions();
    const AuditResult result = runAudit(opts);
    ASSERT_FALSE(result.mispredicts.empty());
    for (const AuditMispredict &entry : result.mispredicts) {
        SCOPED_TRACE(entry.record.repro);
        Mispredict replayed;
        std::string error;
        ASSERT_TRUE(replayMispredict(entry, opts.params.seed,
                                     replayed, error))
            << error;
        EXPECT_EQ(replayed.kind, entry.record.kind);
        EXPECT_EQ(replayed.pc, entry.record.pc);
        EXPECT_EQ(replayed.premise, entry.record.premise);
        EXPECT_EQ(replayed.observed, entry.record.observed);
        EXPECT_EQ(replayed.bound, entry.record.bound);
        EXPECT_EQ(replayed.cycle, entry.record.cycle);
    }
}

TEST(Audit, OptionsHashIgnoresJobsAndSeesTheGrid)
{
    AuditOptions a = goldenOptions();
    AuditOptions b = goldenOptions();
    b.jobs = 8;
    // The worker count never changes the result bytes, so it must
    // not change the identity either (daemon dedupe rides on this).
    EXPECT_EQ(auditOptionsHash(a), auditOptionsHash(b));

    AuditOptions c = goldenOptions();
    c.params.seed = 43;
    EXPECT_NE(auditOptionsHash(a), auditOptionsHash(c));
    AuditOptions d = goldenOptions();
    d.retryLimits = {1, 2};
    EXPECT_NE(auditOptionsHash(a), auditOptionsHash(d));
    AuditOptions e = goldenOptions();
    e.workloads = {"queue"};
    EXPECT_NE(auditOptionsHash(a), auditOptionsHash(e));
}

TEST(Audit, WriteAuditJsonCreatesMissingParentDirs)
{
    const AuditResult result = runAudit(altSqueezeOptions());
    const std::string root = "/tmp/clearsim_audit_dir_test";
    std::filesystem::remove_all(root);
    const std::string path = root + "/x/y/audit.json";
    std::string error;
    ASSERT_TRUE(writeAuditJson(path, result, error)) << error;

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), auditJsonString(result));
    std::filesystem::remove_all(root);
}

} // namespace
} // namespace clearsim
