/**
 * @file
 * Tests of the experiment harness: runOnce determinism, retry-limit
 * selection, env parsing, and the sweep cache round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "clearsim/clearsim.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

TEST(RunnerTest, RunOnceIsDeterministic)
{
    SystemConfig cfg = makeClearConfig();
    WorkloadParams params;
    params.opsPerThread = 6;
    params.seed = 10;
    const RunResult a = runOnce(cfg, "bitcoin", params);
    const RunResult b = runOnce(cfg, "bitcoin", params);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    EXPECT_EQ(a.htm.aborts, b.htm.aborts);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(RunnerTest, RunOnceFillsAllFields)
{
    SystemConfig cfg = makeBaselineConfig();
    WorkloadParams params;
    params.opsPerThread = 4;
    params.seed = 11;
    const RunResult r = runOnce(cfg, "mwobject", params);
    EXPECT_EQ(r.workload, "mwobject");
    EXPECT_EQ(r.config, "B");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.htm.commits, 32u * 4);
    EXPECT_GT(r.energy.staticEnergy, 0.0);
    EXPECT_GT(r.energy.dynamicEnergy, 0.0);
}

TEST(RunnerTest, CellPicksBestRetryLimit)
{
    SweepOptions opts;
    opts.workloads = {"mwobject"};
    opts.retryLimits = {0, 6};
    opts.seeds = 1;
    opts.params.opsPerThread = 10;
    const CellResult cell = runCell("C", "mwobject", opts);
    EXPECT_TRUE(cell.bestRetryLimit == 0 ||
                cell.bestRetryLimit == 6);
    EXPECT_GT(cell.cycles, 0.0);
    EXPECT_GT(cell.htm.commits, 0u);
}

TEST(RunnerTest, SweepCoversAllRequestedCells)
{
    SweepOptions opts;
    opts.workloads = {"mwobject", "arrayswap"};
    opts.configs = {"B", "C"};
    opts.retryLimits = {2};
    opts.seeds = 1;
    opts.params.opsPerThread = 4;
    const auto results = runSweep(opts);
    EXPECT_EQ(results.size(), 4u);
    EXPECT_TRUE(results.count({"mwobject", "B"}));
    EXPECT_TRUE(results.count({"arrayswap", "C"}));
}

TEST(RunnerTest, EnvOverridesParsed)
{
    setenv("CLEARSIM_OPS", "23", 1);
    setenv("CLEARSIM_SEEDS", "5", 1);
    setenv("CLEARSIM_RETRIES", "3,7", 1);
    setenv("CLEARSIM_WORKLOADS", "bitcoin,stack", 1);
    const SweepOptions opts = SweepOptions::fromEnv();
    unsetenv("CLEARSIM_OPS");
    unsetenv("CLEARSIM_SEEDS");
    unsetenv("CLEARSIM_RETRIES");
    unsetenv("CLEARSIM_WORKLOADS");

    EXPECT_EQ(opts.params.opsPerThread, 23u);
    EXPECT_EQ(opts.seeds, 5u);
    EXPECT_EQ(opts.retryLimits, (std::vector<unsigned>{3, 7}));
    EXPECT_EQ(opts.workloads,
              (std::vector<std::string>{"bitcoin", "stack"}));
}

TEST(RunnerTest, DefaultWorkloadListIsAll19)
{
    unsetenv("CLEARSIM_WORKLOADS");
    const SweepOptions opts = SweepOptions::fromEnv();
    EXPECT_EQ(opts.workloads.size(), 19u);
}

TEST(SweepCacheTest, OptionHashDiscriminates)
{
    SweepOptions a = SweepOptions::fromEnv();
    SweepOptions b = a;
    EXPECT_EQ(sweepOptionsHash(a), sweepOptionsHash(b));
    b.seeds += 1;
    EXPECT_NE(sweepOptionsHash(a), sweepOptionsHash(b));
    b = a;
    b.workloads.push_back("extra");
    EXPECT_NE(sweepOptionsHash(a), sweepOptionsHash(b));
}

TEST(SweepCacheTest, SaveLoadRoundTrip)
{
    SweepSummary summary;
    CellSummary cell;
    cell.workload = "bitcoin";
    cell.config = "C";
    cell.bestRetryLimit = 4;
    cell.cycles = 1234.5;
    cell.energy = 99.25;
    cell.discoveryShare = 0.0125;
    cell.commits = 100;
    cell.commitsByMode = {40, 50, 5, 5};
    cell.aborts = 77;
    cell.abortsByCategory = {70, 3, 2, 2};
    cell.commitsRetry0 = 40;
    cell.commitsRetry1 = 30;
    cell.commitsNonFallback = 95;
    cell.commitsFallback = 5;
    summary[{"bitcoin", "C"}] = cell;

    const std::string path = "/tmp/clearsim_cache_test.csv";
    saveSweepCache(path, 0xabcdef, summary);

    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x111111, loaded)); // stale
    EXPECT_TRUE(loaded.empty());
    EXPECT_TRUE(loadSweepCache(path, 0xabcdef, loaded));
    ASSERT_EQ(loaded.size(), 1u);
    const CellSummary &got = loaded.at({"bitcoin", "C"});
    EXPECT_EQ(got.bestRetryLimit, 4u);
    EXPECT_DOUBLE_EQ(got.cycles, 1234.5);
    EXPECT_EQ(got.commitsByMode[1], 50u);
    EXPECT_EQ(got.abortsByCategory[0], 70u);
    EXPECT_EQ(got.commitsFallback, 5u);
    std::remove(path.c_str());
}

TEST(SweepCacheTest, MissingFileLoadsNothing)
{
    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache("/tmp/definitely_not_there.csv", 1,
                                loaded));
}

} // namespace
} // namespace clearsim
