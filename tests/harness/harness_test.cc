/**
 * @file
 * Tests of the experiment harness: runOnce determinism, retry-limit
 * selection, env parsing/validation, and the sweep cache round trip
 * including corruption handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "clearsim/clearsim.hh"
#include "harness/sweep_cache.hh"

namespace clearsim
{
namespace
{

TEST(RunnerTest, RunOnceIsDeterministic)
{
    SystemConfig cfg = makeClearConfig();
    WorkloadParams params;
    params.opsPerThread = 6;
    params.seed = 10;
    const RunResult a = runOnce(cfg, "bitcoin", params);
    const RunResult b = runOnce(cfg, "bitcoin", params);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.htm.commits, b.htm.commits);
    EXPECT_EQ(a.htm.aborts, b.htm.aborts);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(RunnerTest, RunOnceFillsAllFields)
{
    SystemConfig cfg = makeBaselineConfig();
    WorkloadParams params;
    params.opsPerThread = 4;
    params.seed = 11;
    const RunResult r = runOnce(cfg, "mwobject", params);
    EXPECT_EQ(r.workload, "mwobject");
    EXPECT_EQ(r.config, "B");
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.htm.commits, 32u * 4);
    EXPECT_GT(r.energy.staticEnergy, 0.0);
    EXPECT_GT(r.energy.dynamicEnergy, 0.0);
}

TEST(RunnerTest, CellPicksBestRetryLimit)
{
    SweepOptions opts;
    opts.workloads = {"mwobject"};
    opts.retryLimits = {0, 6};
    opts.seeds = 1;
    opts.params.opsPerThread = 10;
    const CellResult cell = runCell("C", "mwobject", opts);
    EXPECT_TRUE(cell.bestRetryLimit == 0 ||
                cell.bestRetryLimit == 6);
    EXPECT_GT(cell.cycles, 0.0);
    EXPECT_GT(cell.htm.commits, 0u);
}

TEST(RunnerTest, SweepCoversAllRequestedCells)
{
    SweepOptions opts;
    opts.workloads = {"mwobject", "arrayswap"};
    opts.configs = {"B", "C"};
    opts.retryLimits = {2};
    opts.seeds = 1;
    opts.params.opsPerThread = 4;
    const auto results = runSweep(opts);
    EXPECT_EQ(results.size(), 4u);
    EXPECT_TRUE(results.count({"mwobject", "B"}));
    EXPECT_TRUE(results.count({"arrayswap", "C"}));
}

TEST(RunnerTest, EnvOverridesParsed)
{
    setenv("CLEARSIM_OPS", "23", 1);
    setenv("CLEARSIM_SEEDS", "5", 1);
    setenv("CLEARSIM_RETRIES", "3,7", 1);
    setenv("CLEARSIM_WORKLOADS", "bitcoin,stack", 1);
    const SweepOptions opts = SweepOptions::fromEnv();
    unsetenv("CLEARSIM_OPS");
    unsetenv("CLEARSIM_SEEDS");
    unsetenv("CLEARSIM_RETRIES");
    unsetenv("CLEARSIM_WORKLOADS");

    EXPECT_EQ(opts.params.opsPerThread, 23u);
    EXPECT_EQ(opts.seeds, 5u);
    EXPECT_EQ(opts.retryLimits, (std::vector<unsigned>{3, 7}));
    EXPECT_EQ(opts.workloads,
              (std::vector<std::string>{"bitcoin", "stack"}));
}

TEST(RunnerTest, DefaultWorkloadListIsAll19)
{
    unsetenv("CLEARSIM_WORKLOADS");
    const SweepOptions opts = SweepOptions::fromEnv();
    EXPECT_EQ(opts.workloads.size(), 19u);
}

TEST(RunnerTest, EnvParsesJobs)
{
    setenv("CLEARSIM_JOBS", "4", 1);
    EXPECT_EQ(SweepOptions::fromEnv().jobs, 4u);
    unsetenv("CLEARSIM_JOBS");
    EXPECT_EQ(SweepOptions::fromEnv().jobs, 0u); // 0 = auto
}

// Malformed CLEARSIM_* knobs must terminate with a clear fatal()
// naming the knob instead of silently becoming 0 (atoi) or a huge
// wrapped unsigned (negatives).

class RunnerEnvDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }

    void
    TearDown() override
    {
        for (const char *name :
             {"CLEARSIM_OPS", "CLEARSIM_SEEDS", "CLEARSIM_TRIM",
              "CLEARSIM_RETRIES", "CLEARSIM_JOBS"})
            unsetenv(name);
    }
};

TEST_F(RunnerEnvDeathTest, RejectsGarbageOps)
{
    setenv("CLEARSIM_OPS", "banana", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_OPS");
}

TEST_F(RunnerEnvDeathTest, RejectsNegativeSeeds)
{
    setenv("CLEARSIM_SEEDS", "-3", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_SEEDS");
}

TEST_F(RunnerEnvDeathTest, RejectsZeroSeeds)
{
    setenv("CLEARSIM_SEEDS", "0", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_SEEDS");
}

TEST_F(RunnerEnvDeathTest, RejectsTrailingJunkTrim)
{
    setenv("CLEARSIM_TRIM", "3x", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_TRIM");
}

TEST_F(RunnerEnvDeathTest, RejectsGarbageInRetryList)
{
    setenv("CLEARSIM_RETRIES", "1,x,4", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_RETRIES");
}

TEST_F(RunnerEnvDeathTest, RejectsEmptyRetryList)
{
    setenv("CLEARSIM_RETRIES", ",,", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_RETRIES");
}

TEST_F(RunnerEnvDeathTest, RejectsZeroJobs)
{
    setenv("CLEARSIM_JOBS", "0", 1);
    EXPECT_EXIT(SweepOptions::fromEnv(),
                ::testing::ExitedWithCode(1), "CLEARSIM_JOBS");
}

TEST_F(RunnerEnvDeathTest, RunSweepRejectsZeroSeedOptions)
{
    SweepOptions opts;
    opts.workloads = {"mwobject"};
    opts.configs = {"B"};
    opts.seeds = 0;
    EXPECT_EXIT(runSweep(opts), ::testing::ExitedWithCode(1),
                "seed");
}

TEST(SweepCacheTest, OptionHashDiscriminates)
{
    SweepOptions a = SweepOptions::fromEnv();
    SweepOptions b = a;
    EXPECT_EQ(sweepOptionsHash(a), sweepOptionsHash(b));
    b.seeds += 1;
    EXPECT_NE(sweepOptionsHash(a), sweepOptionsHash(b));
    b = a;
    b.workloads.push_back("extra");
    EXPECT_NE(sweepOptionsHash(a), sweepOptionsHash(b));
}

TEST(SweepCacheTest, SaveLoadRoundTrip)
{
    SweepSummary summary;
    CellSummary cell;
    cell.workload = "bitcoin";
    cell.config = "C";
    cell.bestRetryLimit = 4;
    cell.cycles = 1234.5;
    cell.energy = 99.25;
    cell.discoveryShare = 0.0125;
    cell.commits = 100;
    cell.commitsByMode = {40, 50, 5, 5};
    cell.aborts = 77;
    cell.abortsByCategory = {70, 3, 2, 2};
    cell.commitsRetry0 = 40;
    cell.commitsRetry1 = 30;
    cell.commitsNonFallback = 95;
    cell.commitsFallback = 5;
    summary[{"bitcoin", "C"}] = cell;

    const std::string path = "/tmp/clearsim_cache_test.csv";
    saveSweepCache(path, 0xabcdef, summary);

    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x111111, loaded)); // stale
    EXPECT_TRUE(loaded.empty());
    EXPECT_TRUE(loadSweepCache(path, 0xabcdef, loaded));
    ASSERT_EQ(loaded.size(), 1u);
    const CellSummary &got = loaded.at({"bitcoin", "C"});
    EXPECT_EQ(got.bestRetryLimit, 4u);
    EXPECT_DOUBLE_EQ(got.cycles, 1234.5);
    EXPECT_EQ(got.commitsByMode[1], 50u);
    EXPECT_EQ(got.abortsByCategory[0], 70u);
    EXPECT_EQ(got.commitsFallback, 5u);
    std::remove(path.c_str());
}

TEST(SweepCacheTest, MissingFileLoadsNothing)
{
    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache("/tmp/definitely_not_there.csv", 1,
                                loaded));
}

namespace cache_helpers
{

CellSummary
sampleCell()
{
    CellSummary cell;
    cell.workload = "bitcoin";
    cell.config = "C";
    cell.bestRetryLimit = 4;
    cell.cycles = 1234.5;
    cell.energy = 99.25;
    cell.discoveryShare = 0.0125;
    cell.commits = 100;
    cell.commitsByMode = {40, 50, 5, 5};
    cell.aborts = 77;
    cell.abortsByCategory = {70, 3, 2, 2};
    cell.commitsRetry0 = 40;
    cell.commitsRetry1 = 30;
    cell.commitsNonFallback = 95;
    cell.commitsFallback = 5;
    return cell;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

} // namespace cache_helpers

TEST(SweepCacheTest, RoundTripPreservesFullDoublePrecision)
{
    using namespace cache_helpers;
    SweepSummary summary;
    CellSummary cell = sampleCell();
    // Values that need more than the default 6 significant digits:
    // the old ostream-default writer silently perturbed these, so a
    // cache hit differed from a fresh sweep.
    cell.cycles = 123456789.87654321;
    cell.energy = 1.0 / 3.0;
    cell.discoveryShare = 0.123456789012345678;
    summary[{cell.workload, cell.config}] = cell;

    const std::string path = "/tmp/clearsim_cache_precision.csv";
    saveSweepCache(path, 0x12, summary);
    SweepSummary loaded;
    ASSERT_TRUE(loadSweepCache(path, 0x12, loaded));
    const CellSummary &got = loaded.at({cell.workload, cell.config});
    EXPECT_EQ(got.cycles, cell.cycles);   // bit-exact, not NEAR
    EXPECT_EQ(got.energy, cell.energy);
    EXPECT_EQ(got.discoveryShare, cell.discoveryShare);
    std::remove(path.c_str());
}

TEST(SweepCacheTest, CorruptTrailingLineRejectsWholeFile)
{
    using namespace cache_helpers;
    SweepSummary summary;
    const CellSummary cell = sampleCell();
    summary[{cell.workload, cell.config}] = cell;
    const std::string path = "/tmp/clearsim_cache_corrupt1.csv";
    saveSweepCache(path, 0x33, summary);

    std::ofstream append(path, std::ios::app);
    append << "truncated,line\n";
    append.close();

    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x33, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(SweepCacheTest, NonNumericFieldRejectsWholeFile)
{
    using namespace cache_helpers;
    SweepSummary summary;
    const CellSummary cell = sampleCell();
    summary[{cell.workload, cell.config}] = cell;
    const std::string path = "/tmp/clearsim_cache_corrupt2.csv";
    saveSweepCache(path, 0x44, summary);

    // Corrupt the commits column of the (only) data row.
    std::string text = readFile(path);
    const auto pos = text.find(",100,");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 5, ",1x0,");
    writeFile(path, text);

    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x44, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(SweepCacheTest, ExtraColumnRejectsWholeFile)
{
    using namespace cache_helpers;
    SweepSummary summary;
    const CellSummary cell = sampleCell();
    summary[{cell.workload, cell.config}] = cell;
    const std::string path = "/tmp/clearsim_cache_corrupt3.csv";
    saveSweepCache(path, 0x55, summary);

    std::string text = readFile(path);
    ASSERT_FALSE(text.empty());
    ASSERT_EQ(text.back(), '\n');
    text.insert(text.size() - 1, ",999");
    writeFile(path, text);

    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x55, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(SweepCacheTest, MalformedHeaderHashRejects)
{
    using namespace cache_helpers;
    const std::string path = "/tmp/clearsim_cache_corrupt4.csv";
    writeFile(path, "# clearsim-sweep-cache zz!!\nbitcoin,C\n");
    SweepSummary loaded;
    EXPECT_FALSE(loadSweepCache(path, 0x66, loaded));
    writeFile(path, "not a cache at all\n");
    EXPECT_FALSE(loadSweepCache(path, 0x66, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(SweepCacheTest, SweepWithCacheRerunsOnCorruptFile)
{
    using namespace cache_helpers;
    SweepOptions opts;
    opts.workloads = {"mwobject"};
    opts.configs = {"B"};
    opts.retryLimits = {2};
    opts.seeds = 1;
    opts.params.opsPerThread = 4;

    const std::string path = "/tmp/clearsim_cache_fallback.csv";
    setenv("CLEARSIM_CACHE", path.c_str(), 1);

    // A file whose header hash matches these options but whose body
    // is garbage: sweepWithCache must re-run the sweep, not serve
    // zero-filled cells.
    char header[64];
    std::snprintf(header, sizeof(header),
                  "# clearsim-sweep-cache %llx\n",
                  static_cast<unsigned long long>(
                      sweepOptionsHash(opts)));
    writeFile(path, std::string(header) + "mwobject,B,garbage\n");

    const SweepSummary summary = sweepWithCache(opts);
    unsetenv("CLEARSIM_CACHE");
    ASSERT_EQ(summary.size(), 1u);
    const CellSummary &cell = summary.at({"mwobject", "B"});
    EXPECT_GT(cell.cycles, 0.0);
    EXPECT_GT(cell.commits, 0u);

    // And it must have overwritten the corrupt file with a valid
    // cache for the next bench binary.
    SweepSummary reloaded;
    EXPECT_TRUE(
        loadSweepCache(path, sweepOptionsHash(opts), reloaded));
    EXPECT_EQ(reloaded.at({"mwobject", "B"}).commits, cell.commits);
    std::remove(path.c_str());
}

} // namespace
} // namespace clearsim
