/** @file Tests of the optional CSV figure export. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/csv_export.hh"

namespace clearsim
{
namespace
{

TEST(CsvExportTest, NoEnvNoFile)
{
    unsetenv("CLEARSIM_CSV_DIR");
    CsvTable table;
    table.header = {"a", "b"};
    table.rows = {{"1", "2"}};
    EXPECT_FALSE(maybeExportCsv("csv_export_test_none", table));
}

TEST(CsvExportTest, WritesHeaderAndRows)
{
    setenv("CLEARSIM_CSV_DIR", "/tmp", 1);
    CsvTable table;
    table.header = {"benchmark", "B", "C"};
    table.rows = {{"bitcoin", "1.0", "0.30"},
                  {"stack", "1.0", "0.77"}};
    EXPECT_TRUE(maybeExportCsv("csv_export_test_rw", table));
    unsetenv("CLEARSIM_CSV_DIR");

    std::ifstream in("/tmp/csv_export_test_rw.csv");
    ASSERT_TRUE(static_cast<bool>(in));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "benchmark,B,C");
    std::getline(in, line);
    EXPECT_EQ(line, "bitcoin,1.0,0.30");
    std::getline(in, line);
    EXPECT_EQ(line, "stack,1.0,0.77");
    std::remove("/tmp/csv_export_test_rw.csv");
}

TEST(CsvExportTest, CreatesMissingDirectoryTree)
{
    std::string dir = "/tmp/clearsim_csv_test_tree/a/b";
    std::filesystem::remove_all("/tmp/clearsim_csv_test_tree");
    setenv("CLEARSIM_CSV_DIR", dir.c_str(), 1);
    CsvTable table;
    table.header = {"x"};
    table.rows = {{"1"}};
    EXPECT_TRUE(maybeExportCsv("nested", table));
    unsetenv("CLEARSIM_CSV_DIR");
    EXPECT_TRUE(std::filesystem::exists(dir + "/nested.csv"));
    std::filesystem::remove_all("/tmp/clearsim_csv_test_tree");
}

TEST(CsvExportTest, QuotesCellsPerRfc4180)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote(""), "");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(csvQuote("cr\rhere"), "\"cr\rhere\"");

    setenv("CLEARSIM_CSV_DIR", "/tmp", 1);
    CsvTable table;
    table.header = {"name", "note"};
    table.rows = {{"a,b", "say \"hi\""}};
    EXPECT_TRUE(maybeExportCsv("csv_export_test_quote", table));
    unsetenv("CLEARSIM_CSV_DIR");

    std::ifstream in("/tmp/csv_export_test_quote.csv");
    ASSERT_TRUE(static_cast<bool>(in));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,note");
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\",\"say \"\"hi\"\"\"");
    std::remove("/tmp/csv_export_test_quote.csv");
}

/**
 * An uncreatable CLEARSIM_CSV_DIR (a path component is a regular
 * file) is fatal: the user asked for the export.
 */
TEST(CsvExportDeathTest, UncreatableDirIsFatal)
{
    { std::ofstream f("/tmp/clearsim_csv_test_file"); f << "x"; }
    setenv("CLEARSIM_CSV_DIR", "/tmp/clearsim_csv_test_file/sub", 1);
    CsvTable table;
    table.header = {"x"};
    EXPECT_EXIT(maybeExportCsv("nope", table),
                testing::ExitedWithCode(1), "cannot create");
    unsetenv("CLEARSIM_CSV_DIR");
    std::remove("/tmp/clearsim_csv_test_file");
}

} // namespace
} // namespace clearsim
