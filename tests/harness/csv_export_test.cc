/** @file Tests of the optional CSV figure export. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/csv_export.hh"

namespace clearsim
{
namespace
{

TEST(CsvExportTest, NoEnvNoFile)
{
    unsetenv("CLEARSIM_CSV_DIR");
    CsvTable table;
    table.header = {"a", "b"};
    table.rows = {{"1", "2"}};
    EXPECT_FALSE(maybeExportCsv("csv_export_test_none", table));
}

TEST(CsvExportTest, WritesHeaderAndRows)
{
    setenv("CLEARSIM_CSV_DIR", "/tmp", 1);
    CsvTable table;
    table.header = {"benchmark", "B", "C"};
    table.rows = {{"bitcoin", "1.0", "0.30"},
                  {"stack", "1.0", "0.77"}};
    EXPECT_TRUE(maybeExportCsv("csv_export_test_rw", table));
    unsetenv("CLEARSIM_CSV_DIR");

    std::ifstream in("/tmp/csv_export_test_rw.csv");
    ASSERT_TRUE(static_cast<bool>(in));
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "benchmark,B,C");
    std::getline(in, line);
    EXPECT_EQ(line, "bitcoin,1.0,0.30");
    std::getline(in, line);
    EXPECT_EQ(line, "stack,1.0,0.77");
    std::remove("/tmp/csv_export_test_rw.csv");
}

TEST(CsvExportTest, UnwritableDirReturnsFalse)
{
    setenv("CLEARSIM_CSV_DIR", "/nonexistent_dir_xyz", 1);
    CsvTable table;
    table.header = {"x"};
    EXPECT_FALSE(maybeExportCsv("nope", table));
    unsetenv("CLEARSIM_CSV_DIR");
}

} // namespace
} // namespace clearsim
