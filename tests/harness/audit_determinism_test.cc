/**
 * @file
 * Parallel-executor contract of the audit engine: the
 * clearsim-audit-v1 document is byte-identical for every worker
 * count. The reduction walks unit slots in fixed grid order, so
 * jobs only changes wall-clock time, never bytes — the same
 * contract the sweep engine pins, extended to the certifying
 * analyzer's audit.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/audit.hh"

namespace clearsim
{
namespace
{

AuditOptions
smallAudit(unsigned jobs)
{
    AuditOptions opts;
    // "B" rides along: a no-CLEAR baseline must be as transparent
    // to the byte identity as the full machinery.
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    opts.params.threads = 8;
    opts.params.opsPerThread = 4;
    opts.params.seed = 42;
    opts.jobs = jobs;
    return opts;
}

TEST(AuditDeterminism, JsonIsByteIdenticalForAnyJobCount)
{
    const std::string serial =
        auditJsonString(runAudit(smallAudit(1)));
    EXPECT_EQ(serial, auditJsonString(runAudit(smallAudit(4))));
    EXPECT_EQ(serial, auditJsonString(runAudit(smallAudit(2))));
}

TEST(AuditDeterminism, ReportIsByteIdenticalForAnyJobCount)
{
    EXPECT_EQ(auditReport(runAudit(smallAudit(1))),
              auditReport(runAudit(smallAudit(4))));
}

} // namespace
} // namespace clearsim
