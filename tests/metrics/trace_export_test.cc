/** @file Tests of JSONL/Chrome trace export and abort attribution. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/region_executor.hh"
#include "core/system.hh"
#include "metrics/trace_export.hh"

namespace clearsim
{
namespace
{

TraceEvent
makeEvent(TraceKind kind, TracePayload payload = {})
{
    TraceEvent e;
    e.cycle = 1234;
    e.core = 3;
    e.pc = 0x700;
    e.kind = kind;
    e.mode = ExecMode::SCl;
    e.reason = AbortReason::Nacked;
    e.countedRetries = 2;
    e.payload = std::move(payload);
    return e;
}

void
expectRoundTrip(const TraceEvent &event)
{
    const std::string line = traceEventToJson(event);
    TraceEvent back;
    std::string error;
    ASSERT_TRUE(traceEventFromJson(line, back, error))
        << line << ": " << error;
    EXPECT_EQ(traceEventToJson(back), line);
    EXPECT_EQ(back.cycle, event.cycle);
    EXPECT_EQ(back.core, event.core);
    EXPECT_EQ(back.pc, event.pc);
    EXPECT_EQ(back.kind, event.kind);
    EXPECT_EQ(back.mode, event.mode);
    EXPECT_EQ(back.reason, event.reason);
    EXPECT_EQ(back.countedRetries, event.countedRetries);
}

TEST(TraceJsonlTest, GoldenLine)
{
    TraceEvent e;
    e.cycle = 254;
    e.core = 5;
    e.pc = 0x4100;
    e.kind = TraceKind::AttemptBegin;
    EXPECT_EQ(traceEventToJson(e),
              "{\"cycle\":254,\"core\":5,\"kind\":\"begin\","
              "\"mode\":\"spec\",\"reason\":\"none\",\"retries\":0,"
              "\"pc\":\"0x4100\"}");
}

TEST(TraceJsonlTest, GoldenLineWithPayload)
{
    TraceEvent e = makeEvent(TraceKind::LineLockReleased,
                             LockPayload{0x412, 37});
    EXPECT_EQ(traceEventToJson(e),
              "{\"cycle\":1234,\"core\":3,\"kind\":\"lock-released\","
              "\"mode\":\"s-cl\",\"reason\":\"nacked\","
              "\"retries\":2,\"pc\":\"0x700\",\"line\":\"0x412\","
              "\"hold\":37}");
}

TEST(TraceJsonlTest, EveryPayloadKindRoundTrips)
{
    expectRoundTrip(makeEvent(TraceKind::AttemptBegin));
    expectRoundTrip(makeEvent(TraceKind::Commit));
    expectRoundTrip(makeEvent(TraceKind::FallbackAcquired));
    expectRoundTrip(
        makeEvent(TraceKind::Abort, AbortPayload{0x412}));
    expectRoundTrip(makeEvent(TraceKind::LineLockAcquired,
                              LockPayload{0x412, 0}));
    expectRoundTrip(makeEvent(TraceKind::LineLockReleased,
                              LockPayload{0x412, 99}));
    expectRoundTrip(makeEvent(TraceKind::LineLockNacked,
                              LockPayload{0x412, 0}));
    expectRoundTrip(makeEvent(TraceKind::LineLockRetried,
                              LockPayload{0x412, 0}));
    expectRoundTrip(makeEvent(TraceKind::DirSetLockAcquired,
                              DirSetPayload{7}));
    expectRoundTrip(makeEvent(TraceKind::DirSetLockReleased,
                              DirSetPayload{7}));
    expectRoundTrip(makeEvent(TraceKind::DirInvalidate,
                              InvalidatePayload{0x412, 3}));
    expectRoundTrip(makeEvent(TraceKind::ConflictVerdict,
                              ConflictPayload{0x412, 2, true}));
    expectRoundTrip(makeEvent(TraceKind::ConflictVerdict,
                              ConflictPayload{0x412, 0, false}));
    expectRoundTrip(makeEvent(TraceKind::FallbackContended,
                              FallbackPayload{1, true}));
    expectRoundTrip(makeEvent(TraceKind::FallbackReadAcquired,
                              FallbackPayload{2, false}));
    expectRoundTrip(makeEvent(TraceKind::FallbackReleased,
                              FallbackPayload{0, false}));
    expectRoundTrip(makeEvent(
        TraceKind::BackoffWait,
        BackoffPayload{BackoffWaitKind::LockRetry, 64}));
}

TEST(TraceJsonlTest, PayloadFieldsSurvive)
{
    TraceEvent back;
    std::string error;
    ASSERT_TRUE(traceEventFromJson(
        traceEventToJson(makeEvent(TraceKind::ConflictVerdict,
                                   ConflictPayload{0x412, 2, true})),
        back, error));
    const auto *conflict = std::get_if<ConflictPayload>(&back.payload);
    ASSERT_NE(conflict, nullptr);
    EXPECT_EQ(conflict->line, 0x412u);
    EXPECT_EQ(conflict->victims, 2u);
    EXPECT_TRUE(conflict->requesterWins);

    ASSERT_TRUE(traceEventFromJson(
        traceEventToJson(makeEvent(
            TraceKind::BackoffWait,
            BackoffPayload{BackoffWaitKind::FallbackSpin, 64})),
        back, error));
    const auto *backoff = std::get_if<BackoffPayload>(&back.payload);
    ASSERT_NE(backoff, nullptr);
    EXPECT_EQ(backoff->wait, BackoffWaitKind::FallbackSpin);
    EXPECT_EQ(backoff->cycles, 64u);
}

TEST(TraceJsonlTest, RejectsBadLines)
{
    TraceEvent e;
    std::string error;
    EXPECT_FALSE(traceEventFromJson("not json", e, error));
    EXPECT_FALSE(traceEventFromJson("{}", e, error));
    EXPECT_FALSE(traceEventFromJson(
        "{\"cycle\":1,\"core\":0,\"kind\":\"bogus\","
        "\"mode\":\"spec\",\"reason\":\"none\",\"retries\":0,"
        "\"pc\":\"0x0\"}",
        e, error));
    // A lock event without its line payload is invalid.
    EXPECT_FALSE(traceEventFromJson(
        "{\"cycle\":1,\"core\":0,\"kind\":\"lock-acquired\","
        "\"mode\":\"spec\",\"reason\":\"none\",\"retries\":0,"
        "\"pc\":\"0x0\"}",
        e, error));
}

TEST(TraceJsonlTest, StreamRoundTripAndErrorLineNumber)
{
    std::vector<TraceEvent> events = {
        makeEvent(TraceKind::AttemptBegin),
        makeEvent(TraceKind::Abort, AbortPayload{0x10}),
        makeEvent(TraceKind::Commit),
    };
    std::ostringstream os;
    TraceJsonlWriter writer(os);
    for (const TraceEvent &e : events)
        writer.write(e);
    EXPECT_EQ(writer.count(), 3u);

    std::istringstream is(os.str());
    std::vector<TraceEvent> back;
    std::string error;
    ASSERT_TRUE(readTraceJsonl(is, back, error)) << error;
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[1].kind, TraceKind::Abort);

    std::istringstream bad(os.str() + "\ngarbage\n");
    EXPECT_FALSE(readTraceJsonl(bad, back, error));
    EXPECT_NE(error.find("line 5"), std::string::npos) << error;
}

TEST(ChromeTraceTest, ProducesValidJsonWithSlices)
{
    std::vector<TraceEvent> events = {
        makeEvent(TraceKind::AttemptBegin),
        makeEvent(TraceKind::LineLockAcquired,
                  LockPayload{0x412, 0}),
        makeEvent(TraceKind::Commit),
    };
    std::ostringstream os;
    writeChromeTrace(os, events);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, error)) << error;
    const JsonValue *trace = doc.find("traceEvents");
    ASSERT_NE(trace, nullptr);
    ASSERT_EQ(trace->items.size(), 3u);
    EXPECT_EQ(trace->items[0].find("ph")->text, "B");
    EXPECT_EQ(trace->items[1].find("ph")->text, "i");
    EXPECT_EQ(trace->items[2].find("ph")->text, "E");
    EXPECT_EQ(trace->items[0].find("tid")->asUint(), 3u);
    EXPECT_EQ(trace->items[0].find("ts")->asUint(), 1234u);
}

TEST(AbortAttributionTest, AggregatesAndSorts)
{
    auto abortEvent = [](RegionPc pc, LineAddr line,
                         AbortReason reason) {
        TraceEvent e;
        e.kind = TraceKind::Abort;
        e.pc = pc;
        e.reason = reason;
        e.payload = AbortPayload{line};
        return e;
    };
    std::vector<TraceEvent> events = {
        abortEvent(0x700, 0x10, AbortReason::MemoryConflict),
        abortEvent(0x700, 0x10, AbortReason::Nacked),
        abortEvent(0x700, 0x20, AbortReason::ExplicitFallback),
        abortEvent(0x800, 0x10, AbortReason::CapacityOverflow),
        makeEvent(TraceKind::Commit), // ignored
    };
    const AbortAttribution attribution = attributeAborts(events);
    EXPECT_EQ(attribution.totalAborts, 4u);
    ASSERT_EQ(attribution.rows.size(), 3u);
    // (0x700, 0x10) leads with 2 aborts, both memory conflicts
    // (Nacked folds into MemoryConflict, as in Figure 11).
    EXPECT_EQ(attribution.rows[0].pc, 0x700u);
    EXPECT_EQ(attribution.rows[0].line, 0x10u);
    EXPECT_EQ(attribution.rows[0].total, 2u);
    EXPECT_EQ(attribution.rows[0].byCategory[static_cast<unsigned>(
                  AbortCategory::MemoryConflict)],
              2u);
    EXPECT_EQ(attribution.totals[static_cast<unsigned>(
                  AbortCategory::MemoryConflict)],
              2u);
    EXPECT_EQ(attribution.totals[static_cast<unsigned>(
                  AbortCategory::ExplicitFallback)],
              1u);
    EXPECT_EQ(attribution.totals[static_cast<unsigned>(
                  AbortCategory::Others)],
              1u);
}

SimTask
incBody(TxContext &tx, Addr counter)
{
    TxValue v = co_await tx.load(counter);
    co_await tx.store(counter, v + TxValue(1));
}

/**
 * The acceptance cross-check: the per-category totals of the
 * trace-derived attribution equal HtmStats::abortsByCategory of the
 * same run (one Abort event per recordAbort() call).
 */
TEST(AbortAttributionTest, TotalsMatchHtmStats)
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 6;
    System sys(cfg, 2);
    std::vector<TraceEvent> events;
    sys.setTraceSink(
        [&events](const TraceEvent &e) { events.push_back(e); });

    const Addr counter = sys.mem().store().allocateLines(1);
    std::vector<SimTask> workers;
    for (unsigned c = 0; c < 6; ++c) {
        workers.push_back([](System &sys, CoreId core,
                             Addr counter) -> SimTask {
            for (int i = 0; i < 20; ++i) {
                co_await sys.runRegion(
                    core, 0x700, [counter](TxContext &tx) {
                        return incBody(tx, counter);
                    });
            }
        }(sys, static_cast<CoreId>(c), counter));
    }
    for (auto &w : workers)
        w.start();
    sys.runToCompletion(100'000'000ull);

    const AbortAttribution attribution = attributeAborts(events);
    EXPECT_EQ(attribution.totalAborts, sys.stats().aborts);
    ASSERT_GT(attribution.totalAborts, 0u);
    for (unsigned c = 0; c < kNumAbortCategories; ++c) {
        EXPECT_EQ(attribution.totals[c],
                  sys.stats().abortsByCategory[c])
            << "category " << c;
    }
}

} // namespace
} // namespace clearsim
