/** @file Tests of the formatted stats report. */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"
#include "metrics/stats_report.hh"

namespace clearsim
{
namespace
{

TEST(StatsReportTest, ContainsEveryKeyAndHeader)
{
    SystemConfig cfg = makeClearConfig();
    WorkloadParams params;
    params.opsPerThread = 6;
    params.seed = 12;
    const RunResult run = runOnce(cfg, "mwobject", params);
    const std::string report = statsReportString(run, cfg.numCores);

    for (const char *key :
         {"clearsim stats: mwobject [C]", "sim.cycles",
          "tx.commits", "tx.commits.ns_cl", "tx.aborts",
          "tx.aborts.memory_conflict", "tx.aborts_per_commit",
          "clear.cacheline_locks", "clear.discovery_share",
          "fallback.acquisitions", "mem.l1_hits",
          "mem.dram_accesses", "energy.static", "energy.total"}) {
        EXPECT_NE(report.find(key), std::string::npos)
            << "missing key: " << key;
    }
}

TEST(StatsReportTest, CommitsLinesAreConsistent)
{
    SystemConfig cfg = makeBaselineConfig();
    WorkloadParams params;
    params.opsPerThread = 4;
    params.seed = 13;
    const RunResult run = runOnce(cfg, "stack", params);
    const std::string report = statsReportString(run, cfg.numCores);

    // The report must state the same commit total as the stats.
    const std::string needle = "tx.commits";
    const auto pos = report.find(needle);
    ASSERT_NE(pos, std::string::npos);
    const auto eol = report.find('\n', pos);
    const std::string line = report.substr(pos, eol - pos);
    EXPECT_NE(line.find(std::to_string(run.htm.commits)),
              std::string::npos);
}

TEST(StatsReportTest, EmptyRunDoesNotCrash)
{
    RunResult run;
    run.workload = "none";
    run.config = "B";
    const std::string report = statsReportString(run, 32);
    EXPECT_NE(report.find("tx.commits"), std::string::npos);
}

} // namespace
} // namespace clearsim
