/** @file Tests of the clearsim-stats-v1 JSON export. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "harness/runner.hh"
#include "metrics/json_export.hh"
#include "metrics/stats_report.hh"

namespace clearsim
{
namespace
{

RunResult
sampleRun()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 4;
    WorkloadParams params;
    params.threads = 4;
    params.opsPerThread = 8;
    params.seed = 7;
    return runOnce(cfg, "bitcoin", params);
}

TEST(StatsJsonTest, DocumentShape)
{
    const RunResult run = sampleRun();
    const std::string doc = statsJsonString({run});

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(doc, root, error)) << error;
    EXPECT_EQ(root.find("schema")->text, kStatsJsonSchema);
    const JsonValue *runs = root.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 1u);

    const JsonValue &r = runs->items[0];
    EXPECT_EQ(r.find("workload")->text, "bitcoin");
    EXPECT_EQ(r.find("config")->text, run.config);
    EXPECT_EQ(r.find("seed")->asUint(), 7u);
    EXPECT_EQ(r.find("max_retries")->asUint(), run.maxRetries);
    EXPECT_EQ(r.find("cores")->asUint(), 4u);
    ASSERT_NE(r.find("counters"), nullptr);
    ASSERT_NE(r.find("scalars"), nullptr);
    ASSERT_NE(r.find("distributions"), nullptr);
}

/**
 * The JSON mirrors the registry: every entry appears under its kind
 * with the registry's value, in registration order.
 */
TEST(StatsJsonTest, MirrorsStatsRegistry)
{
    const RunResult run = sampleRun();
    const StatsRegistry reg = buildStatsRegistry(run, run.numCores);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(statsJsonString({run}), root, error));
    const JsonValue &r = root.find("runs")->items[0];

    const JsonValue *counters = r.find("counters");
    ASSERT_EQ(counters->members.size(), reg.counters().size());
    for (std::size_t i = 0; i < reg.counters().size(); ++i) {
        EXPECT_EQ(counters->members[i].first,
                  reg.counters()[i].name);
        EXPECT_EQ(counters->members[i].second.asUint(),
                  reg.counters()[i].value);
    }

    const JsonValue *scalars = r.find("scalars");
    ASSERT_EQ(scalars->members.size(), reg.scalars().size());
    for (std::size_t i = 0; i < reg.scalars().size(); ++i) {
        EXPECT_EQ(scalars->members[i].first, reg.scalars()[i].name);
        EXPECT_DOUBLE_EQ(scalars->members[i].second.asDouble(),
                         reg.scalars()[i].value);
    }

    const JsonValue *dists = r.find("distributions");
    ASSERT_EQ(dists->members.size(), reg.distributions().size());
    for (std::size_t i = 0; i < reg.distributions().size(); ++i) {
        const auto &entry = reg.distributions()[i];
        const JsonValue &d = dists->members[i].second;
        EXPECT_EQ(dists->members[i].first, entry.name);
        EXPECT_EQ(d.find("count")->asUint(), entry.summary.count);
        EXPECT_EQ(d.find("sum")->asUint(), entry.summary.sum);
        EXPECT_DOUBLE_EQ(d.find("mean")->asDouble(),
                         entry.summary.mean);
        EXPECT_EQ(d.find("p50")->asUint(), entry.summary.p50);
        EXPECT_EQ(d.find("p95")->asUint(), entry.summary.p95);
        EXPECT_EQ(d.find("max")->asUint(), entry.summary.max);
    }
}

TEST(StatsJsonTest, SameRunSerializesIdentically)
{
    const RunResult a = sampleRun();
    const RunResult b = sampleRun();
    EXPECT_EQ(statsJsonString({a}), statsJsonString({b}));
}

TEST(StatsJsonTest, WriteCreatesParentDirectories)
{
    const std::string dir = "/tmp/clearsim_json_test_tree";
    std::filesystem::remove_all(dir);
    const std::string path = dir + "/a/b/stats.json";
    std::string error;
    ASSERT_TRUE(writeStatsJson(path, {sampleRun()}, error))
        << error;

    std::ifstream in(path);
    ASSERT_TRUE(static_cast<bool>(in));
    std::stringstream ss;
    ss << in.rdbuf();
    JsonValue root;
    EXPECT_TRUE(parseJson(ss.str(), root, error)) << error;
    std::filesystem::remove_all(dir);
}

TEST(StatsJsonTest, WriteReportsFailure)
{
    { std::ofstream f("/tmp/clearsim_json_test_file"); f << "x"; }
    std::string error;
    EXPECT_FALSE(writeStatsJson(
        "/tmp/clearsim_json_test_file/sub/stats.json", {}, error));
    EXPECT_FALSE(error.empty());
    std::filesystem::remove("/tmp/clearsim_json_test_file");
}

} // namespace
} // namespace clearsim
