/**
 * @file
 * Tests of the derived-metric computations (RunResult) and the
 * energy model.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "metrics/run_result.hh"

namespace clearsim
{
namespace
{

TEST(EnergyModelTest, StaticScalesWithCyclesAndCores)
{
    EnergyParams p;
    HtmStats htm;
    MemStats mem;
    const EnergyBreakdown e1 = computeEnergy(p, 1000, 4, htm, mem);
    const EnergyBreakdown e2 = computeEnergy(p, 2000, 4, htm, mem);
    const EnergyBreakdown e3 = computeEnergy(p, 1000, 8, htm, mem);
    EXPECT_DOUBLE_EQ(e2.staticEnergy, 2 * e1.staticEnergy);
    EXPECT_DOUBLE_EQ(e3.staticEnergy, 2 * e1.staticEnergy);
    EXPECT_DOUBLE_EQ(e1.dynamicEnergy, 0.0);
}

TEST(EnergyModelTest, AbortedWorkCostsDynamicEnergy)
{
    EnergyParams p;
    HtmStats clean;
    clean.committedUops = 100;
    HtmStats wasteful = clean;
    wasteful.abortedUops = 400;
    wasteful.aborts = 10;
    MemStats mem;
    const double e_clean =
        computeEnergy(p, 100, 1, clean, mem).dynamicEnergy;
    const double e_waste =
        computeEnergy(p, 100, 1, wasteful, mem).dynamicEnergy;
    EXPECT_GT(e_waste, e_clean);
    EXPECT_NEAR(e_waste - e_clean,
                400 * p.perUop + 10 * p.perAbort, 1e-9);
}

TEST(EnergyModelTest, MemoryLevelsHaveIncreasingCost)
{
    EnergyParams p;
    EXPECT_LT(p.perL1Access, p.perL2Access);
    EXPECT_LT(p.perL2Access, p.perL3Access);
    EXPECT_LT(p.perL3Access, p.perMemAccess);

    HtmStats htm;
    MemStats mem;
    mem.memAccesses = 10;
    const double dram =
        computeEnergy(p, 0, 1, htm, mem).dynamicEnergy;
    MemStats mem2;
    mem2.l1Hits = 10;
    const double l1 =
        computeEnergy(p, 0, 1, htm, mem2).dynamicEnergy;
    EXPECT_GT(dram, l1);
}

RunResult
syntheticResult()
{
    RunResult r;
    r.cycles = 1000;
    r.htm.commits = 100;
    r.htm.commitsByMode = {50, 20, 10, 20};
    r.htm.aborts = 40;
    r.htm.abortsByCategory = {20, 10, 6, 4};
    // 60 commits at 0 retries, 25 at 1, 10 at 3; 5 fallback at 4.
    for (int i = 0; i < 55; ++i)
        r.htm.commitsByRetries.record(0);
    for (int i = 0; i < 25; ++i)
        r.htm.commitsByRetries.record(1);
    for (int i = 0; i < 15; ++i)
        r.htm.commitsByRetries.record(3);
    for (int i = 0; i < 5; ++i)
        r.htm.fallbackCommitRetries.record(4);
    return r;
}

TEST(RunResultTest, AbortsPerCommit)
{
    EXPECT_DOUBLE_EQ(syntheticResult().abortsPerCommit(), 0.4);
}

TEST(RunResultTest, CommitModeFractionsSumToOne)
{
    const auto f = syntheticResult().commitModeFractions();
    EXPECT_DOUBLE_EQ(f[0] + f[1] + f[2] + f[3], 1.0);
    EXPECT_DOUBLE_EQ(f[0], 0.5);
}

TEST(RunResultTest, AbortCategoryFractions)
{
    const auto f = syntheticResult().abortCategoryFractions();
    EXPECT_DOUBLE_EQ(f[0], 0.5);
    EXPECT_DOUBLE_EQ(f[1], 0.25);
    EXPECT_DOUBLE_EQ(f[2], 0.15);
    EXPECT_DOUBLE_EQ(f[3], 0.1);
}

TEST(RunResultTest, RetryBreakdownExcludesZeroRetries)
{
    const auto b = syntheticResult().retryBreakdown();
    // Retried commits: 25 (1-retry) + 15 (3-retry) + 5 fallback.
    EXPECT_DOUBLE_EQ(b.oneRetry, 25.0 / 45.0);
    EXPECT_DOUBLE_EQ(b.multiRetry, 15.0 / 45.0);
    EXPECT_DOUBLE_EQ(b.fallback, 5.0 / 45.0);
    EXPECT_DOUBLE_EQ(b.retriedShare, 45.0 / 100.0);
}

TEST(RunResultTest, EmptyRunsAreSafe)
{
    RunResult r;
    EXPECT_DOUBLE_EQ(r.abortsPerCommit(), 0.0);
    EXPECT_DOUBLE_EQ(r.retryBreakdown().oneRetry, 0.0);
    EXPECT_DOUBLE_EQ(r.discoveryOverheadShare(32), 0.0);
}

TEST(RunResultTest, DiscoveryOverheadShare)
{
    RunResult r;
    r.cycles = 1000;
    r.htm.discoveryFailedModeCycles = 3200;
    EXPECT_DOUBLE_EQ(r.discoveryOverheadShare(32), 0.1);
}

} // namespace
} // namespace clearsim
