/**
 * @file
 * Lockstep proof for the two views of the config grammar: the
 * catalogue JSON clearsimd serves and the registry lists
 * `clearsim_cli --list-configs` prints are both pure functions of
 * ConfigRegistry, so they must enumerate exactly the same entries,
 * in the same order, with the same descriptions. A preset or
 * override added to one view but not the other is a drift bug —
 * daemon clients would discover a different grammar than CLI users.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

struct CatalogueEntry
{
    std::string name;
    std::string description;
};

std::vector<CatalogueEntry>
entriesOf(const JsonValue &doc, const char *section)
{
    std::vector<CatalogueEntry> out;
    const JsonValue *list = doc.find(section);
    EXPECT_NE(nullptr, list) << section;
    if (!list)
        return out;
    for (const JsonValue &entry : list->items)
        out.push_back({entry.find("name")->text,
                       entry.find("description")->text});
    return out;
}

TEST(CatalogueLockstep, JsonEnumeratesExactlyTheRegistryLists)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(reg.catalogueJson(), doc, error)) << error;

    const auto presets = entriesOf(doc, "presets");
    ASSERT_EQ(reg.presets().size(), presets.size());
    for (std::size_t i = 0; i < presets.size(); ++i) {
        EXPECT_EQ(reg.presets()[i].name, presets[i].name) << i;
        EXPECT_EQ(reg.presets()[i].description,
                  presets[i].description)
            << presets[i].name;
    }

    const auto modifiers = entriesOf(doc, "modifiers");
    ASSERT_EQ(reg.modifiers().size(), modifiers.size());
    for (std::size_t i = 0; i < modifiers.size(); ++i) {
        EXPECT_EQ(reg.modifiers()[i].name, modifiers[i].name) << i;
        EXPECT_EQ(reg.modifiers()[i].description,
                  modifiers[i].description)
            << modifiers[i].name;
    }

    const auto overrides = entriesOf(doc, "overrides");
    ASSERT_EQ(reg.overrideKeys().size(), overrides.size());
    for (std::size_t i = 0; i < overrides.size(); ++i) {
        EXPECT_EQ(reg.overrideKeys()[i].name, overrides[i].name)
            << i;
        EXPECT_EQ(reg.overrideKeys()[i].description,
                  overrides[i].description)
            << overrides[i].name;
    }
}

TEST(CatalogueLockstep, OverrideRangesMatchTheRegistry)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(reg.catalogueJson(), doc, error)) << error;

    const JsonValue *list = doc.find("overrides");
    ASSERT_NE(nullptr, list);
    ASSERT_EQ(reg.overrideKeys().size(), list->items.size());
    for (std::size_t i = 0; i < list->items.size(); ++i) {
        const ConfigOverrideKey &key = reg.overrideKeys()[i];
        const JsonValue &entry = list->items[i];
        EXPECT_EQ(key.minValue, entry.find("min")->asUint())
            << key.name;
        EXPECT_EQ(key.maxValue, entry.find("max")->asUint())
            << key.name;
    }
}

TEST(CatalogueLockstep, AdaptiveGrammarIsDiscoverableInBothViews)
{
    // The new preset "A" and its :adapt.* keys must be visible to
    // daemon clients (catalogue) and CLI users (--list-configs)
    // alike; both read these exact lists.
    const ConfigRegistry &reg = ConfigRegistry::instance();
    EXPECT_TRUE(reg.hasPreset("A"));

    const std::string json = reg.catalogueJson();
    for (const char *needle :
         {"\"A\"", "adapt.enabled", "adapt.eligible",
          "adapt.capacity", "adapt.indirection", "adapt.lock-order",
          "adapt.retries"}) {
        EXPECT_NE(std::string::npos, json.find(needle)) << needle;
    }

    bool found = false;
    for (const ConfigOverrideKey &key : reg.overrideKeys())
        found |= key.name == "adapt.retries";
    EXPECT_TRUE(found);
}

} // namespace
} // namespace clearsim
