/**
 * @file
 * Service-layer determinism: a sweep (or audit) served by clearsimd
 * over the wire is byte-identical to the same grid run by the
 * engine in-process — for any job count on either side.
 *
 * This extends the parallel-executor contract (ctest -L
 * determinism) across the daemon: framing, scheduling, streaming
 * and caching must all be transparent to the bytes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/json.hh"
#include "harness/audit.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/wire.hh"

namespace clearsim
{
namespace
{

SweepOptions
smallSweep(unsigned jobs)
{
    SweepOptions opts;
    // "A" rides along: its capture pass must be transparent to the
    // engine-vs-wire byte identity like any static preset.
    opts.configs = {"B", "C", "A"};
    opts.workloads = {"mwobject", "arrayswap"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    opts.jobs = jobs;
    return opts;
}

std::string
sweepRequest(const SweepOptions &opts)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value("sweep");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("jobs");
    w.value(opts.jobs);
    w.endObject();
    return out;
}

/** One daemon in @p dir serving @p request; returns the payload. */
std::string
serveThroughDaemon(const std::string &dir,
                   const std::string &request)
{
    Daemon::Options options;
    options.socketPath = dir + "/d.sock";
    options.scheduler.cachePath = dir + "/cache.csv";
    options.scheduler.dlqPath = dir + "/dlq.jsonl";
    Daemon daemon(options);

    ClientConnection connection;
    std::string error;
    EXPECT_TRUE(connection.connect(options.socketPath, error))
        << error;
    EXPECT_TRUE(connection.send(request, error)) << error;
    WireMessage outcome;
    EXPECT_TRUE(connection.waitForOutcome(outcome, error)) << error;
    EXPECT_EQ("result", outcome.type) << outcome.text("message");
    return outcome.text("payload");
}

std::string
sweepThroughDaemon(const std::string &dir, const SweepOptions &opts)
{
    return serveThroughDaemon(dir, sweepRequest(opts));
}

TEST(ServiceDeterminism, WirePayloadMatchesTheEngineForAnyJobCount)
{
    const std::string dir = "/tmp/clearsim_service_determinism";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir + "/serial");
    std::filesystem::create_directories(dir + "/parallel");

    // Ground truth: the engine in-process, serial execution.
    const SweepOptions serial = smallSweep(1);
    const SweepOutcome local =
        runSweepGrid(serial, {}, SweepObserver{});
    ASSERT_FALSE(local.cancelled);
    SweepSummary summary;
    for (const auto &[key, cell] : local.cells) {
        ASSERT_FALSE(cell.failed) << cell.error;
        summary[key] = CellSummary::fromCell(cell);
    }
    const std::string expected =
        serializeSweepCache(sweepOptionsHash(serial), summary);

    // The daemon at jobs=1 and jobs=4 must both serve exactly
    // those bytes. (The job count is excluded from sweep identity,
    // so each daemon gets its own cache directory to force a real
    // execution.)
    EXPECT_EQ(expected,
              sweepThroughDaemon(dir + "/serial", smallSweep(1)));
    EXPECT_EQ(expected,
              sweepThroughDaemon(dir + "/parallel", smallSweep(4)));

    std::filesystem::remove_all(dir);
}

AuditOptions
smallServiceAudit(unsigned jobs)
{
    AuditOptions opts;
    opts.configs = {"C"};
    opts.workloads = {"queue", "bst"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    opts.params.threads = 4;
    opts.params.opsPerThread = 4;
    opts.params.scale = 1;
    opts.params.seed = 42;
    opts.jobs = jobs;
    return opts;
}

std::string
auditRequest(const AuditOptions &opts)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value("audit");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("scale");
    w.value(opts.params.scale);
    w.key("seed");
    w.value(opts.params.seed);
    w.key("jobs");
    w.value(opts.jobs);
    w.endObject();
    return out;
}

TEST(ServiceDeterminism, AuditPayloadMatchesInProcessBytes)
{
    const std::string dir = "/tmp/clearsim_service_audit_det";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir + "/serial");
    std::filesystem::create_directories(dir + "/parallel");

    // Ground truth: the audit engine in-process, serial execution.
    const std::string expected =
        auditJsonString(runAudit(smallServiceAudit(1)));

    // The daemon at jobs=1 and jobs=4 must serve exactly those
    // bytes (separate dirs: the job count is excluded from audit
    // identity, so one daemon would dedupe the second request).
    EXPECT_EQ(expected,
              serveThroughDaemon(
                  dir + "/serial",
                  auditRequest(smallServiceAudit(1))));
    EXPECT_EQ(expected,
              serveThroughDaemon(
                  dir + "/parallel",
                  auditRequest(smallServiceAudit(4))));

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace clearsim
