/**
 * @file
 * Dead-letter queue tests: persistence round-trips, corruption
 * tolerance, the list/replay JSON documents, and deterministic
 * replay from the repro string alone.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/json.hh"
#include "service/dead_letter.hh"

namespace clearsim
{
namespace
{

/**
 * A forced-abort plan plus the watchdog turns config B into a
 * certain, fast livelock: every region aborts forever and the
 * global-progress invariant trips at the horizon. (Same spec the
 * sweep crash tests use.)
 */
const char kLivelockRepro[] =
    "repro{workload=mwobject;config=B:fault.forced-abort=1000"
    ":fault.watchdog=1:fault.horizon=20000:maxRetries=1000000;"
    "threads=4;ops=4;scale=1;seed=1}";

class DeadLetterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "/tmp/clearsim_dead_letter_test";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        path_ = dir_ + "/dlq.jsonl";
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    DeadLetter
    sample(const std::string &suffix) const
    {
        DeadLetter entry;
        entry.jobId = "run:repro{...}" + suffix;
        entry.workload = "mwobject";
        entry.config = "B+faults-forced-abort";
        entry.error = "invariant violated: global-progress " +
                      suffix;
        entry.repro = "repro{workload=mwobject;config=B;threads=4;"
                      "ops=4;scale=1;seed=1}";
        return entry;
    }

    std::string dir_;
    std::string path_;
};

TEST_F(DeadLetterTest, LoadsNothingFromAMissingFile)
{
    DeadLetterQueue queue(path_);
    EXPECT_TRUE(queue.load().empty());
}

TEST_F(DeadLetterTest, AppendLoadRoundTripsEveryField)
{
    DeadLetterQueue queue(path_);
    queue.append(sample("one"));
    queue.append(sample("two"));

    const std::vector<DeadLetter> entries = queue.load();
    ASSERT_EQ(2u, entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const DeadLetter expect = sample(i == 0 ? "one" : "two");
        EXPECT_EQ(expect.jobId, entries[i].jobId);
        EXPECT_EQ(expect.workload, entries[i].workload);
        EXPECT_EQ(expect.config, entries[i].config);
        EXPECT_EQ(expect.error, entries[i].error);
        EXPECT_EQ(expect.repro, entries[i].repro);
    }
}

TEST_F(DeadLetterTest, EmbeddedNewlinesSurviveTheJsonlFormat)
{
    DeadLetterQueue queue(path_);
    DeadLetter entry = sample("multiline");
    entry.error = "line one\nline two\n  trace: [1] abort";
    queue.append(entry);
    const std::vector<DeadLetter> entries = queue.load();
    ASSERT_EQ(1u, entries.size());
    EXPECT_EQ(entry.error, entries[0].error);
}

TEST_F(DeadLetterTest, MalformedLinesAreSkippedNotFatal)
{
    DeadLetterQueue queue(path_);
    queue.append(sample("good-1"));

    // Corrupt the file the way a partial write or an editor would.
    {
        std::ofstream out(path_, std::ios::app);
        out << "{\"id\":\"torn entr\n";
        out << "not json at all\n";
    }
    queue.append(sample("good-2"));

    const std::vector<DeadLetter> entries = queue.load();
    ASSERT_EQ(2u, entries.size());
    EXPECT_EQ(sample("good-1").jobId, entries[0].jobId);
    EXPECT_EQ(sample("good-2").jobId, entries[1].jobId);
}

TEST_F(DeadLetterTest, ClearEmptiesTheQueue)
{
    DeadLetterQueue queue(path_);
    queue.append(sample("x"));
    queue.clear();
    EXPECT_TRUE(queue.load().empty());
    // And the file is empty, not stale.
    std::ifstream in(path_);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(content.empty());
}

TEST_F(DeadLetterTest, ListJsonIsAVersionedDocument)
{
    const std::string json =
        DeadLetterQueue::listJson({sample("a"), sample("b")});
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, error)) << error;
    EXPECT_EQ("clearsim-dlq-v1", doc.find("schema")->text);
    ASSERT_NE(nullptr, doc.find("entries"));
    EXPECT_EQ(2u, doc.find("entries")->items.size());
    const JsonValue &first = doc.find("entries")->items[0];
    EXPECT_EQ(sample("a").repro, first.find("repro")->text);
    EXPECT_EQ(sample("a").error, first.find("error")->text);
}

TEST_F(DeadLetterTest, ReplayOfABenignReproDoesNotReproduce)
{
    DeadLetter entry;
    entry.repro = "repro{workload=mwobject;config=B;threads=2;"
                  "ops=2;scale=1;seed=1}";
    entry.error = "whatever was recorded";
    const ReplayOutcome outcome = DeadLetterQueue::replay(entry);
    EXPECT_FALSE(outcome.reproduced);
    EXPECT_FALSE(outcome.sameError);
    EXPECT_TRUE(outcome.error.empty());
}

TEST_F(DeadLetterTest, ReplayOfAnUnparsableReproIsReported)
{
    DeadLetter entry;
    entry.repro = "not a repro string";
    const ReplayOutcome outcome = DeadLetterQueue::replay(entry);
    EXPECT_FALSE(outcome.reproduced);
    EXPECT_NE(std::string::npos,
              outcome.error.find("unreplayable"));
}

TEST_F(DeadLetterTest, LivelockReplayReproducesTheExactError)
{
    DeadLetter entry;
    entry.repro = kLivelockRepro;

    // First replay recovers the failure; a second replay of the
    // recorded error must be bit-identical — replay is
    // deterministic, so "sameError" is a meaningful verdict.
    const ReplayOutcome first = DeadLetterQueue::replay(entry);
    ASSERT_TRUE(first.reproduced);
    EXPECT_NE(std::string::npos,
              first.error.find("global-progress"));

    entry.error = first.error;
    const ReplayOutcome second = DeadLetterQueue::replay(entry);
    EXPECT_TRUE(second.reproduced);
    EXPECT_TRUE(second.sameError);
}

TEST_F(DeadLetterTest, ReplayJsonPairsEntriesWithOutcomes)
{
    ReplayOutcome ok;
    ReplayOutcome bad;
    bad.reproduced = true;
    bad.sameError = true;
    bad.error = "boom";
    const std::string json = DeadLetterQueue::replayJson(
        {sample("a"), sample("b")}, {ok, bad});
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, error)) << error;
    EXPECT_EQ("clearsim-dlq-replay-v1",
              doc.find("schema")->text);
    ASSERT_NE(nullptr, doc.find("replays"));
    ASSERT_EQ(2u, doc.find("replays")->items.size());
    const JsonValue &second = doc.find("replays")->items[1];
    EXPECT_TRUE(second.find("reproduced")->boolean);
    EXPECT_EQ("boom", second.find("error")->text);
}

} // namespace
} // namespace clearsim
