/**
 * @file
 * End-to-end daemon tests: a real Daemon on a real AF_UNIX socket,
 * talked to through ClientConnection — exactly the configuration
 * tools/clearsimd.cpp and tools/clearsim_client.cpp ship.
 *
 * Covers the acceptance criteria of the service layer: results over
 * the wire byte-identical to the engine run locally, request
 * deduplication against in-flight jobs and the on-disk cache,
 * cancellation, the dead-letter queue round-trip, concurrent
 * clients, and the strict fail-closed protocol.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/wire.hh"

namespace clearsim
{
namespace
{

/** Same certain-livelock spec the sweep crash tests use. */
const char kLivelockConfig[] =
    "B:fault.forced-abort=1000:fault.watchdog=1"
    ":fault.horizon=20000";

/** The small benign sweep shared by the byte-identity tests. */
SweepOptions
benignSweep()
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    opts.jobs = 2;
    return opts;
}

/** Serialize a sweep request matching @p opts. */
std::string
sweepRequest(const SweepOptions &opts)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value("sweep");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("jobs");
    w.value(opts.jobs);
    w.endObject();
    return out;
}

std::string
runRequest(const std::string &config, const std::string &workload,
           std::uint64_t retries, std::uint64_t threads,
           std::uint64_t ops)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value("run");
    w.key("config");
    w.value(config);
    w.key("workload");
    w.value(workload);
    w.key("retries");
    w.value(retries);
    w.key("threads");
    w.value(threads);
    w.key("ops");
    w.value(ops);
    w.endObject();
    return out;
}

/** A request carrying only schema/type (+ optional id). */
std::string
simpleRequest(const char *type, const std::string &id = "")
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value(type);
    if (!id.empty()) {
        w.key("id");
        w.value(id);
    }
    w.endObject();
    return out;
}

class DaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::string("/tmp/clearsimd_t_") + info->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        startDaemon();
    }

    void
    TearDown() override
    {
        daemon_.reset();
        std::filesystem::remove_all(dir_);
    }

    void
    startDaemon()
    {
        Daemon::Options options;
        options.socketPath = dir_ + "/d.sock";
        options.scheduler.cachePath = dir_ + "/cache.csv";
        options.scheduler.dlqPath = dir_ + "/dlq.jsonl";
        options.scheduler.jobs = 2;
        daemon_ = std::make_unique<Daemon>(options);
    }

    void
    restartDaemon()
    {
        daemon_.reset();
        startDaemon();
    }

    /** Connect a handshaken client, asserting success. */
    std::unique_ptr<ClientConnection>
    client()
    {
        auto connection = std::make_unique<ClientConnection>();
        std::string error;
        EXPECT_TRUE(
            connection->connect(daemon_->socketPath(), error))
            << error;
        return connection;
    }

    /**
     * Send one request and drain to the terminal message,
     * recording every intermediate event.
     */
    WireMessage
    transact(ClientConnection &connection,
             const std::string &request,
             std::vector<WireMessage> *events = nullptr)
    {
        std::string error;
        EXPECT_TRUE(connection.send(request, error)) << error;
        WireMessage outcome;
        EXPECT_TRUE(connection.waitForOutcome(
            outcome, error,
            [&](const WireMessage &event) {
                if (events)
                    events->push_back(event);
            }))
            << error;
        return outcome;
    }

    /** Raw connected socket, no handshake run. */
    int
    rawConnect()
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, daemon_->socketPath().c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(0, ::connect(
                         fd,
                         reinterpret_cast<const sockaddr *>(&addr),
                         sizeof addr));
        return fd;
    }

    /** The ack that answered a request, from recorded events. */
    static const WireMessage *
    ackOf(const std::vector<WireMessage> &events)
    {
        for (const WireMessage &event : events)
            if (event.type == "ack")
                return &event;
        return nullptr;
    }

    std::string dir_;
    std::unique_ptr<Daemon> daemon_;
};

TEST_F(DaemonTest, CatalogueAnswersWithTheDiscoveryDocument)
{
    auto connection = client();
    const WireMessage outcome =
        transact(*connection, simpleRequest("catalogue"));
    ASSERT_EQ("result", outcome.type);
    EXPECT_EQ("catalogue-json", outcome.text("format"));

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(outcome.text("payload"), doc, error))
        << error;
    EXPECT_EQ("clearsim-catalogue-v1",
              doc.find("schema")->text);
    // Both halves of the catalogue are present and non-trivial:
    // every config modifier (fault plans included) and workload is
    // discoverable without a compiled-in list.
    const JsonValue *configs = doc.find("configs");
    ASSERT_NE(nullptr, configs);
    EXPECT_FALSE(configs->find("modifiers")->items.empty());
    const JsonValue *workloads = doc.find("workloads");
    ASSERT_NE(nullptr, workloads);
    EXPECT_GE(workloads->items.size(), 19u);
}

TEST_F(DaemonTest, RunJobReturnsTheStatsDocument)
{
    auto connection = client();
    const WireMessage outcome = transact(
        *connection, runRequest("B", "mwobject", 4, 2, 2));
    ASSERT_EQ("result", outcome.type);
    EXPECT_EQ("run-json", outcome.text("format"));

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(outcome.text("payload"), doc, error))
        << error;
    EXPECT_EQ("clearsim-stats-v1", doc.find("schema")->text);
}

TEST_F(DaemonTest, SweepOverTheWireIsByteIdenticalToTheEngine)
{
    // The ground truth: the engine run in-process, serialized with
    // the canonical writer (what clearsim_cli --sweep emits).
    const SweepOptions opts = benignSweep();
    const SweepOutcome local = runSweepGrid(opts, {},
                                            SweepObserver{});
    ASSERT_FALSE(local.cancelled);
    SweepSummary summary;
    for (const auto &[key, cell] : local.cells) {
        ASSERT_FALSE(cell.failed) << cell.error;
        summary[key] = CellSummary::fromCell(cell);
    }
    const std::string expected =
        serializeSweepCache(sweepOptionsHash(opts), summary);

    auto connection = client();
    std::vector<WireMessage> events;
    const WireMessage outcome =
        transact(*connection, sweepRequest(opts), &events);
    ASSERT_EQ("result", outcome.type) << outcome.text("message");
    EXPECT_EQ("sweep-cache-csv", outcome.text("format"));
    EXPECT_EQ(expected, outcome.text("payload"));

    // The streamed cells reassemble into the same document: every
    // row of the final payload was announced exactly once.
    std::vector<std::string> rows;
    for (const WireMessage &event : events)
        if (event.type == "cell")
            rows.push_back(event.text("row"));
    EXPECT_EQ(summary.size(), rows.size());
    for (const std::string &row : rows)
        EXPECT_NE(std::string::npos,
                  expected.find("\n" + row + "\n"))
            << row;
}

TEST_F(DaemonTest, RepeatedSweepIsServedFromMemoryNotReRun)
{
    auto connection = client();
    const SweepOptions opts = benignSweep();
    const WireMessage first =
        transact(*connection, sweepRequest(opts));
    ASSERT_EQ("result", first.type);

    std::vector<WireMessage> events;
    const WireMessage second =
        transact(*connection, sweepRequest(opts), &events);
    ASSERT_EQ("result", second.type);
    const WireMessage *ack = ackOf(events);
    ASSERT_NE(nullptr, ack);
    EXPECT_EQ("dedup-cached", ack->text("state"));
    EXPECT_EQ(first.text("payload"), second.text("payload"));

    // A cached answer streams no cells: nothing was re-executed.
    for (const WireMessage &event : events)
        EXPECT_NE("cell", event.type);
}

TEST_F(DaemonTest, RestartedDaemonServesTheSweepFromDisk)
{
    const SweepOptions opts = benignSweep();
    {
        auto connection = client();
        ASSERT_EQ("result",
                  transact(*connection, sweepRequest(opts)).type);
    }

    // A fresh daemon process on the same cache file: no in-memory
    // state survives, the answer must come from disk.
    restartDaemon();
    auto connection = client();
    std::vector<WireMessage> events;
    const WireMessage outcome =
        transact(*connection, sweepRequest(opts), &events);
    ASSERT_EQ("result", outcome.type);
    const WireMessage *ack = ackOf(events);
    ASSERT_NE(nullptr, ack);
    EXPECT_EQ("dedup-disk", ack->text("state"));

    SweepSummary summary;
    SweepCacheStore store(dir_ + "/cache.csv");
    ASSERT_TRUE(store.lookup(opts, summary));
    EXPECT_EQ(serializeSweepCache(sweepOptionsHash(opts), summary),
              outcome.text("payload"));
}

TEST_F(DaemonTest, ConcurrentClientsShareOneExecution)
{
    auto first = client();
    auto second = client();
    const SweepOptions opts = benignSweep();

    std::string error;
    ASSERT_TRUE(first->send(sweepRequest(opts), error)) << error;
    ASSERT_TRUE(second->send(sweepRequest(opts), error)) << error;

    std::vector<WireMessage> first_events, second_events;
    WireMessage first_outcome, second_outcome;
    ASSERT_TRUE(first->waitForOutcome(
        first_outcome, error, [&](const WireMessage &event) {
            first_events.push_back(event);
        }))
        << error;
    ASSERT_TRUE(second->waitForOutcome(
        second_outcome, error, [&](const WireMessage &event) {
            second_events.push_back(event);
        }))
        << error;

    ASSERT_EQ("result", first_outcome.type);
    ASSERT_EQ("result", second_outcome.type);
    EXPECT_EQ(first_outcome.text("payload"),
              second_outcome.text("payload"));

    // The two requests race to the scheduler, but exactly one may
    // start an execution; the other's ack must be a dedupe verdict
    // (in-flight while running, cached if it raced past
    // completion).
    const WireMessage *first_ack = ackOf(first_events);
    const WireMessage *second_ack = ackOf(second_events);
    ASSERT_NE(nullptr, first_ack);
    ASSERT_NE(nullptr, second_ack);
    const std::string states[] = {first_ack->text("state"),
                                  second_ack->text("state")};
    const bool first_queued = states[0] == "queued";
    EXPECT_TRUE(first_queued || states[1] == "queued")
        << states[0] << " / " << states[1];
    const std::string &deduped = states[first_queued ? 1 : 0];
    EXPECT_EQ(0u, deduped.find("dedup-")) << deduped;
}

TEST_F(DaemonTest, CancelStopsAQueuedJob)
{
    // Two jobs: the first occupies the executor, the second waits
    // in the FIFO and is cancelled before it produces anything.
    auto runner = client();
    auto victim = client();
    std::string error;
    ASSERT_TRUE(runner->send(sweepRequest(benignSweep()), error))
        << error;

    SweepOptions other = benignSweep();
    other.seeds = 4; // different identity: no dedupe
    ASSERT_TRUE(victim->send(sweepRequest(other), error)) << error;

    // The victim's ack names the job id to cancel.
    WireMessage ack;
    ASSERT_TRUE(victim->receive(ack, error)) << error;
    ASSERT_EQ("ack", ack.type);
    ASSERT_EQ("queued", ack.text("state"));
    ASSERT_TRUE(victim->send(
        simpleRequest("cancel", ack.text("id")), error))
        << error;

    WireMessage outcome;
    ASSERT_TRUE(victim->waitForOutcome(outcome, error)) << error;
    EXPECT_EQ("cancelled", outcome.type);
    EXPECT_EQ(ack.text("id"), outcome.text("id"));

    // The first job is unaffected.
    WireMessage runner_outcome;
    ASSERT_TRUE(runner->waitForOutcome(runner_outcome, error))
        << error;
    EXPECT_EQ("result", runner_outcome.type);
}

TEST_F(DaemonTest, CancellingAnUnknownJobIsAnError)
{
    auto connection = client();
    std::string error;
    ASSERT_TRUE(connection->send(
        simpleRequest("cancel", "no-such-job"), error))
        << error;
    WireMessage reply;
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);
}

TEST_F(DaemonTest, StatusReportsTheJobTable)
{
    auto connection = client();
    const WireMessage run = transact(
        *connection, runRequest("B", "mwobject", 4, 2, 2));
    ASSERT_EQ("result", run.type);

    const WireMessage status =
        transact(*connection, simpleRequest("status"));
    ASSERT_EQ("result", status.type);
    EXPECT_EQ("status-json", status.text("format"));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(status.text("payload"), doc, error))
        << error;
    EXPECT_EQ("clearsim-status-v1", doc.find("schema")->text);
    const JsonValue *jobs = doc.find("jobs");
    ASSERT_NE(nullptr, jobs);
    ASSERT_EQ(1u, jobs->items.size());
    EXPECT_EQ("done", jobs->items[0].find("state")->text);

    // An unknown id is an error, not an empty list.
    ASSERT_TRUE(connection->send(
        simpleRequest("status", "no-such-job"), error))
        << error;
    WireMessage reply;
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);
}

TEST_F(DaemonTest, LivelockFailureLandsInTheDeadLetterQueue)
{
    auto connection = client();
    const WireMessage outcome = transact(
        *connection,
        runRequest(kLivelockConfig, "mwobject", 1000000, 4, 4));
    ASSERT_EQ("failed", outcome.type);
    EXPECT_NE(std::string::npos,
              outcome.text("error").find("global-progress"));
    const std::string repro = outcome.text("repro");
    ASSERT_FALSE(repro.empty());

    // The failure is on disk, listed with the same repro string.
    const WireMessage list =
        transact(*connection, simpleRequest("dlq-list"));
    ASSERT_EQ("result", list.type);
    EXPECT_EQ("dlq-json", list.text("format"));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(list.text("payload"), doc, error))
        << error;
    ASSERT_EQ(1u, doc.find("entries")->items.size());
    EXPECT_EQ(repro,
              doc.find("entries")->items[0].find("repro")->text);

    // Replaying the queue reproduces the identical failure.
    const WireMessage replay =
        transact(*connection, simpleRequest("dlq-replay"));
    ASSERT_EQ("result", replay.type);
    ASSERT_TRUE(parseJson(replay.text("payload"), doc, error))
        << error;
    ASSERT_EQ(1u, doc.find("replays")->items.size());
    const JsonValue &verdict = doc.find("replays")->items[0];
    EXPECT_TRUE(verdict.find("reproduced")->boolean);
    EXPECT_TRUE(verdict.find("sameError")->boolean);

    // And the queue is drainable.
    ASSERT_EQ("result",
              transact(*connection, simpleRequest("dlq-clear"))
                  .type);
    const WireMessage empty =
        transact(*connection, simpleRequest("dlq-list"));
    ASSERT_TRUE(parseJson(empty.text("payload"), doc, error));
    EXPECT_TRUE(doc.find("entries")->items.empty());
}

TEST_F(DaemonTest, FailedJobsAreNotDeduped)
{
    // A retry of a failed spec must execute again (and fail
    // again), not be answered from a remembered failure.
    auto connection = client();
    const std::string request =
        runRequest(kLivelockConfig, "mwobject", 1000000, 4, 4);
    ASSERT_EQ("failed", transact(*connection, request).type);

    std::vector<WireMessage> events;
    const WireMessage again =
        transact(*connection, request, &events);
    EXPECT_EQ("failed", again.type);
    const WireMessage *ack = ackOf(events);
    ASSERT_NE(nullptr, ack);
    EXPECT_EQ("queued", ack->text("state"));
}

TEST_F(DaemonTest, InvalidRequestsAreRejectedWithoutExecution)
{
    auto connection = client();
    std::string error;

    // Unknown workload.
    ASSERT_TRUE(connection->send(
        runRequest("B", "no-such-workload", 4, 2, 2), error));
    WireMessage reply;
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);

    // Unknown config spec.
    ASSERT_TRUE(connection->send(
        runRequest("Z+bogus", "mwobject", 4, 2, 2), error));
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);

    // Out-of-range threads.
    ASSERT_TRUE(connection->send(
        runRequest("B", "mwobject", 4, 100000, 2), error));
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);

    // The connection survives request-level errors.
    EXPECT_EQ("result",
              transact(*connection, simpleRequest("catalogue"))
                  .type);
}

TEST_F(DaemonTest, FirstFrameMustBeHello)
{
    const int fd = rawConnect();
    std::string error;
    ASSERT_TRUE(
        writeWireFrame(fd, simpleRequest("catalogue"), error));
    std::string payload;
    ASSERT_TRUE(readWireFrame(fd, payload, error)) << error;
    WireMessage reply;
    ASSERT_TRUE(parseWireMessage(payload, reply, error)) << error;
    EXPECT_EQ("error", reply.type);
    // The server closes after the protocol violation.
    EXPECT_FALSE(readWireFrame(fd, payload, error));
    ::close(fd);
}

TEST_F(DaemonTest, UnknownProtocolVersionIsRejected)
{
    const int fd = rawConnect();
    std::string hello;
    {
        JsonWriter w(hello);
        w.beginObject();
        w.key("schema");
        w.value(kWireSchema);
        w.key("type");
        w.value("hello");
        w.key("versions");
        w.beginArray();
        w.value("clearsimd-wire-v999");
        w.endArray();
        w.endObject();
    }
    std::string error;
    ASSERT_TRUE(writeWireFrame(fd, hello, error));
    std::string payload;
    ASSERT_TRUE(readWireFrame(fd, payload, error)) << error;
    WireMessage reply;
    ASSERT_TRUE(parseWireMessage(payload, reply, error)) << error;
    EXPECT_EQ("error", reply.type);
    ::close(fd);
}

TEST_F(DaemonTest, UnknownFieldEndsTheConnection)
{
    auto connection = client();
    std::string error;
    ASSERT_TRUE(connection->send(
        R"({"schema":"clearsimd-wire-v1","type":"run",)"
        R"("workload":"mwobject","priority":"high"})",
        error));
    WireMessage reply;
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);
    // Fail closed: the connection is cut, not accommodated.
    EXPECT_FALSE(connection->receive(reply, error));
}

TEST_F(DaemonTest, MalformedJsonEndsTheConnection)
{
    auto connection = client();
    std::string error;
    ASSERT_TRUE(connection->send("{\"schema\": \xff garbage",
                                 error));
    WireMessage reply;
    ASSERT_TRUE(connection->receive(reply, error)) << error;
    EXPECT_EQ("error", reply.type);
    EXPECT_FALSE(connection->receive(reply, error));
}

} // namespace
} // namespace clearsim
