/**
 * @file
 * Mailbox tests: lane priority, FIFO order, client-lane
 * backpressure and close semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "service/mailbox.hh"

namespace clearsim
{
namespace
{

Mail
request(const std::string &tag)
{
    Mail mail;
    mail.kind = MailKind::Request;
    mail.payload = tag;
    return mail;
}

Mail
internalEvent(const std::string &tag)
{
    Mail mail;
    mail.kind = MailKind::Progress;
    mail.payload = tag;
    return mail;
}

TEST(Mailbox, FifoWithinEachLane)
{
    Mailbox box;
    ASSERT_TRUE(box.pushClient(request("a")));
    ASSERT_TRUE(box.pushClient(request("b")));
    ASSERT_TRUE(box.pushClient(request("c")));
    Mail out;
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("a", out.payload);
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("b", out.payload);
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("c", out.payload);
}

TEST(Mailbox, InternalLaneHasPriority)
{
    // The executor must always be able to get through ahead of
    // queued client requests — that is what makes blocking the
    // client lane deadlock-free.
    Mailbox box;
    ASSERT_TRUE(box.pushClient(request("client")));
    ASSERT_TRUE(box.pushInternal(internalEvent("internal")));
    Mail out;
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("internal", out.payload);
    EXPECT_EQ(MailKind::Progress, out.kind);
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("client", out.payload);
}

TEST(Mailbox, ClientLaneBlocksAtCapacityUntilPopped)
{
    Mailbox box(2);
    ASSERT_TRUE(box.pushClient(request("1")));
    ASSERT_TRUE(box.pushClient(request("2")));

    std::atomic<bool> third_landed{false};
    std::thread producer([&] {
        EXPECT_TRUE(box.pushClient(request("3")));
        third_landed = true;
    });

    // The lane is full: the producer must stay blocked.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(third_landed.load());

    Mail out;
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("1", out.payload);
    producer.join();
    EXPECT_TRUE(third_landed.load());

    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("2", out.payload);
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("3", out.payload);
}

TEST(Mailbox, InternalPushNeverBlocks)
{
    Mailbox box(1);
    ASSERT_TRUE(box.pushClient(request("fills the lane")));
    // Far past the client capacity; none of these may block.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(box.pushInternal(internalEvent("e")));
}

TEST(Mailbox, CloseDrainsBacklogThenReportsClosed)
{
    Mailbox box;
    ASSERT_TRUE(box.pushClient(request("a")));
    ASSERT_TRUE(box.pushInternal(internalEvent("b")));
    box.close();
    EXPECT_TRUE(box.closed());

    // Pushes after close are dropped...
    EXPECT_FALSE(box.pushClient(request("late")));
    EXPECT_FALSE(box.pushInternal(internalEvent("late")));

    // ...but the backlog is still readable, internal first.
    Mail out;
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("b", out.payload);
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ("a", out.payload);
    EXPECT_FALSE(box.pop(out));
}

TEST(Mailbox, CloseWakesABlockedProducer)
{
    Mailbox box(1);
    ASSERT_TRUE(box.pushClient(request("full")));
    std::thread producer([&] {
        EXPECT_FALSE(box.pushClient(request("dropped")));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
    producer.join();
}

TEST(Mailbox, CloseWakesABlockedConsumer)
{
    Mailbox box;
    std::thread consumer([&] {
        Mail out;
        EXPECT_FALSE(box.pop(out));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
    consumer.join();
}

TEST(Mailbox, PopForTimesOutOnAnEmptyBox)
{
    Mailbox box;
    Mail out;
    EXPECT_FALSE(box.popFor(out, 10));
    ASSERT_TRUE(box.pushClient(request("now")));
    EXPECT_TRUE(box.popFor(out, 10));
    EXPECT_EQ("now", out.payload);
}

} // namespace
} // namespace clearsim
