/**
 * @file
 * FabricRun unit tests with a synthetic clock: every failure mode
 * of the lease state machine — expiry, work-stealing, bounded
 * retries into the DLQ, duplicate results, checkpoint resume —
 * exercised without sockets, threads or a real sweep.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault/fault_repro.hh"
#include "harness/sweep_cache.hh"
#include "service/fabric.hh"
#include "service/wire.hh"

namespace clearsim
{
namespace
{

SweepOptions
smallSweep()
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap"};
    opts.retryLimits = {1, 4};
    opts.seeds = 2;
    return opts;
}

FabricOptions
fastFabric()
{
    FabricOptions fabric;
    fabric.leaseTtlMs = 100;
    fabric.shardRetryBudget = 2;
    return fabric;
}

/** A synthetic (but parseable) summary for @p key. */
CellSummary
fakeCell(const SweepKey &key)
{
    CellSummary cell;
    cell.workload = key.first;
    cell.config = key.second;
    cell.bestRetryLimit = 1;
    cell.cycles = 123.5;
    cell.energy = 42.25;
    cell.commits = 7;
    return cell;
}

/** serializeSweepCacheRow() lines for every cell of @p shard. */
std::vector<std::string>
rowsFor(const FabricRun &run, unsigned shard)
{
    std::vector<std::string> rows;
    for (const SweepKey &key : run.plan().shards[shard])
        rows.push_back(serializeSweepCacheRow(fakeCell(key)));
    return rows;
}

TEST(FabricRun, LeaseLifecycleCompletesTheRun)
{
    FabricCounters counters;
    FabricRun run("job-1", smallSweep(), 2, fastFabric(), {},
                  counters);
    ASSERT_EQ(2u, run.plan().shardCount);
    EXPECT_FALSE(run.done());
    EXPECT_EQ(0u, run.doneCells());
    EXPECT_EQ(4u, run.totalCells());

    FabricRun::Grant a, b;
    ASSERT_TRUE(run.acquire(1, 0, a));
    ASSERT_TRUE(run.acquire(2, 0, b));
    EXPECT_NE(a.shard, b.shard);
    EXPECT_TRUE(a.skip.empty());
    EXPECT_EQ(1u, run.shardsHeldBy(1));

    // Nothing left to lease while both are held.
    FabricRun::Grant none;
    EXPECT_FALSE(run.acquire(3, 0, none));

    EXPECT_TRUE(run.renew(1, a.shard, 50));
    EXPECT_FALSE(run.renew(2, a.shard, 50)); // not the holder
    EXPECT_FALSE(run.renew(1, 99, 50));      // no such shard

    std::vector<std::string> new_rows;
    EXPECT_EQ(FabricRun::Accept::Accepted,
              run.acceptResult(1, a.shard, rowsFor(run, a.shard),
                               {}, new_rows));
    EXPECT_EQ(run.plan().shards[a.shard].size(), new_rows.size());
    EXPECT_FALSE(run.done());
    EXPECT_EQ(FabricRun::Accept::Accepted,
              run.acceptResult(2, b.shard, rowsFor(run, b.shard),
                               {}, new_rows));
    EXPECT_TRUE(run.done());
    EXPECT_FALSE(run.failed());
    EXPECT_EQ(4u, run.doneCells());
    EXPECT_EQ(2u, counters.leasesGranted);
    EXPECT_EQ(1u, counters.leasesRenewed);
    EXPECT_EQ(2u, counters.resultsAccepted);
    EXPECT_EQ(2u, counters.shardsCompleted);
    EXPECT_EQ(4u, counters.cellsExecuted);

    const FabricRun::Gauges g = run.gauges();
    EXPECT_EQ(2u, g.total);
    EXPECT_EQ(2u, g.completed);
    EXPECT_EQ(0u, g.leased);
}

TEST(FabricRun, ExpiredLeaseIsStolenByTheNextWorker)
{
    FabricCounters counters;
    FabricOptions fabric = fastFabric();
    fabric.shardRetryBudget = 5;
    FabricRun run("job-1", smallSweep(), 1, fabric, {}, counters);

    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));
    EXPECT_EQ(0u, run.tick(99)); // deadline is 100: still alive
    EXPECT_EQ(1u, run.tick(100));
    EXPECT_EQ(1u, counters.leasesExpired);
    EXPECT_EQ(0u, run.shardsHeldBy(1));

    // Work-stealing: another worker picks the shard right up.
    FabricRun::Grant stolen;
    ASSERT_TRUE(run.acquire(2, 100, stolen));
    EXPECT_EQ(grant.shard, stolen.shard);

    // A renewal from the dispossessed worker reports lease-lost.
    EXPECT_FALSE(run.renew(1, grant.shard, 150));
    EXPECT_TRUE(run.renew(2, grant.shard, 150));
}

TEST(FabricRun, FirstResultWinsEvenAfterTheLeaseExpired)
{
    FabricCounters counters;
    FabricOptions fabric = fastFabric();
    fabric.shardRetryBudget = 5;
    FabricRun run("job-1", smallSweep(), 1, fabric, {}, counters);

    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));
    ASSERT_EQ(1u, run.tick(200));
    FabricRun::Grant stolen;
    ASSERT_TRUE(run.acquire(2, 200, stolen));

    // The slow worker finishes anyway. The work is done — merge it.
    std::vector<std::string> new_rows;
    EXPECT_EQ(FabricRun::Accept::Accepted,
              run.acceptResult(1, grant.shard,
                               rowsFor(run, grant.shard), {},
                               new_rows));
    EXPECT_TRUE(run.done());

    // The thief reports later: duplicate, discarded idempotently.
    EXPECT_EQ(FabricRun::Accept::Stale,
              run.acceptResult(2, stolen.shard,
                               rowsFor(run, stolen.shard), {},
                               new_rows));
    EXPECT_TRUE(new_rows.empty());
    EXPECT_EQ(1u, counters.resultsDuplicate);
    EXPECT_EQ(4u, run.doneCells()); // merged exactly once
}

TEST(FabricRun, RetryBudgetExhaustionDeadLettersTheShard)
{
    FabricCounters counters;
    FabricRun run("job-1", smallSweep(), 1, fastFabric(), {},
                  counters); // budget 2
    for (unsigned attempt = 0; attempt < 2; ++attempt) {
        FabricRun::Grant grant;
        ASSERT_TRUE(
            run.acquire(1, attempt * 1000, grant));
        ASSERT_EQ(1u, run.tick(attempt * 1000 + 500));
    }
    EXPECT_TRUE(run.done());
    EXPECT_TRUE(run.failed());
    EXPECT_EQ(1u, counters.shardsDeadLettered);
    EXPECT_EQ(1u, run.gauges().deadLettered);

    // No further lease: the shard is out of the pool.
    FabricRun::Grant grant;
    EXPECT_FALSE(run.acquire(2, 9999, grant));

    // Every unfinished cell gets a DLQ record with a usable repro.
    const std::vector<DeadLetter> records = run.deadLetterRecords();
    ASSERT_EQ(4u, records.size());
    for (const DeadLetter &record : records) {
        EXPECT_EQ("job-1", record.jobId);
        EXPECT_NE(std::string::npos,
                  record.error.find("dead-lettered"));
        ReproSpec spec;
        std::string error;
        EXPECT_TRUE(parseReproString(record.repro, spec, &error))
            << record.repro << ": " << error;
        EXPECT_EQ(record.workload, spec.workload);
    }
}

TEST(FabricRun, CrashReleaseChargesAnAttemptButByeDoesNot)
{
    FabricCounters counters;
    FabricRun run("job-1", smallSweep(), 1, fastFabric(), {},
                  counters); // budget 2

    // Clean worker-bye: shard returns unpenalized, forever.
    for (unsigned round = 0; round < 4; ++round) {
        FabricRun::Grant grant;
        ASSERT_TRUE(run.acquire(1, 0, grant));
        run.releaseWorker(1, false);
        EXPECT_EQ(0u, run.gauges().deadLettered);
    }
    EXPECT_EQ(4u, counters.leasesReleased);

    // Crash-release twice: budget 2 dead-letters the shard.
    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(2, 0, grant));
    run.releaseWorker(2, true);
    EXPECT_FALSE(run.done());
    ASSERT_TRUE(run.acquire(3, 0, grant));
    run.releaseWorker(3, true);
    EXPECT_TRUE(run.done());
    EXPECT_EQ(1u, counters.shardsDeadLettered);
}

TEST(FabricRun, MalformedOrMisdirectedResultsAreRejected)
{
    FabricCounters counters;
    FabricOptions fabric = fastFabric();
    fabric.shardRetryBudget = 10;
    FabricRun run("job-1", smallSweep(), 2, fabric, {}, counters);

    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));
    std::vector<std::string> new_rows;

    // A row that does not parse.
    std::vector<std::string> garbage = rowsFor(run, grant.shard);
    garbage[0] = "not,a,row";
    EXPECT_EQ(FabricRun::Accept::Rejected,
              run.acceptResult(1, grant.shard, garbage, {},
                               new_rows));

    // A valid row, but for a cell of the *other* shard.
    ASSERT_TRUE(run.acquire(1, 0, grant));
    const unsigned other = grant.shard == 0 ? 1 : 0;
    std::vector<std::string> misdirected =
        rowsFor(run, grant.shard);
    misdirected[0] = rowsFor(run, other)[0];
    EXPECT_EQ(FabricRun::Accept::Rejected,
              run.acceptResult(1, grant.shard, misdirected, {},
                               new_rows));

    // Incomplete coverage: one cell neither reported nor failed.
    ASSERT_TRUE(run.acquire(1, 0, grant));
    std::vector<std::string> partial = rowsFor(run, grant.shard);
    partial.pop_back();
    EXPECT_EQ(FabricRun::Accept::Rejected,
              run.acceptResult(1, grant.shard, partial, {},
                               new_rows));

    // Out-of-range shard index: rejected outright (no slot exists
    // to charge, so the per-shard counters stay put).
    EXPECT_EQ(FabricRun::Accept::Rejected,
              run.acceptResult(1, 99, {}, {}, new_rows));

    EXPECT_EQ(3u, counters.resultsRejected);
    EXPECT_EQ(0u, run.doneCells()); // nothing merged
}

TEST(FabricRun, ReportedFailuresCountAsCoverageAndFailTheRun)
{
    FabricCounters counters;
    FabricRun run("job-1", smallSweep(), 1, fastFabric(), {},
                  counters);
    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));

    std::vector<std::string> rows = rowsFor(run, grant.shard);
    const SweepKey failed_key =
        run.plan().shards[grant.shard].back();
    rows.pop_back();
    DeadLetter failure;
    failure.workload = failed_key.first;
    failure.config = failed_key.second;
    failure.error = "invariant violated";
    failure.repro = "repro{...}";

    std::vector<std::string> new_rows;
    EXPECT_EQ(FabricRun::Accept::Accepted,
              run.acceptResult(1, grant.shard, rows, {failure},
                               new_rows));
    EXPECT_TRUE(run.done());
    EXPECT_TRUE(run.failed());
    ASSERT_EQ(1u, run.failures().size());
    EXPECT_EQ("job-1", run.failures()[0].jobId);
    EXPECT_EQ("invariant violated", run.failures()[0].error);
    EXPECT_EQ(1u, counters.cellsFailed);
    EXPECT_EQ(3u, counters.cellsExecuted);
}

TEST(FabricRun, CheckpointResumeSkipsCompletedWork)
{
    const SweepOptions opts = smallSweep();
    const ShardPlan plan = planShards(opts, 2);

    // Checkpoint covers all of shard 0 and one cell of shard 1.
    SweepSummary checkpoint;
    for (const SweepKey &key : plan.shards[0])
        checkpoint[key] = fakeCell(key);
    const SweepKey partial = plan.shards[1].front();
    checkpoint[partial] = fakeCell(partial);

    FabricCounters counters;
    FabricRun run("job-1", opts, 2, fastFabric(), checkpoint,
                  counters);
    EXPECT_EQ(1u, counters.shardsResumed);
    EXPECT_EQ(checkpoint.size(), counters.cellsResumed);
    EXPECT_EQ(checkpoint.size(), run.doneCells());
    EXPECT_FALSE(run.done());

    // The only leasable shard is 1, and its grant carries the
    // already-done cell as a skip — a resumed coordinator never
    // re-executes a completed cell.
    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));
    EXPECT_EQ(1u, grant.shard);
    ASSERT_EQ(1u, grant.skip.size());
    EXPECT_EQ(partial, grant.skip[0]);
    FabricRun::Grant none;
    EXPECT_FALSE(run.acquire(2, 0, none));

    // The worker reports only the cells it actually ran; the merge
    // keeps the checkpointed copy and streams only the new rows.
    std::vector<std::string> rows;
    for (const SweepKey &key : plan.shards[1])
        if (key != partial)
            rows.push_back(serializeSweepCacheRow(fakeCell(key)));
    std::vector<std::string> new_rows;
    EXPECT_EQ(FabricRun::Accept::Accepted,
              run.acceptResult(1, grant.shard, rows, {}, new_rows));
    EXPECT_EQ(rows.size(), new_rows.size());
    EXPECT_TRUE(run.done());
    EXPECT_EQ(run.totalCells(), run.doneCells());
}

TEST(FabricRun, FullyCheckpointedRunIsDoneWithoutALease)
{
    const SweepOptions opts = smallSweep();
    const ShardPlan plan = planShards(opts, 2);
    SweepSummary checkpoint;
    for (const std::vector<SweepKey> &shard : plan.shards)
        for (const SweepKey &key : shard)
            checkpoint[key] = fakeCell(key);

    FabricCounters counters;
    FabricRun run("job-1", opts, 2, fastFabric(), checkpoint,
                  counters);
    EXPECT_TRUE(run.done());
    EXPECT_FALSE(run.failed());
    EXPECT_EQ(2u, counters.shardsResumed);
    FabricRun::Grant grant;
    EXPECT_FALSE(run.acquire(1, 0, grant));
}

TEST(FabricFrames, LeaseGrantRoundTripsThroughTheWire)
{
    SweepOptions opts = smallSweep();
    opts.trimEachSide = 1;
    opts.params.opsPerThread = 64;
    opts.params.seed = 1234;
    opts.jobs = 3;
    FabricCounters counters;
    const ShardPlan plan = planShards(opts, 2);
    SweepSummary checkpoint;
    const SweepKey done = plan.shards[0].front();
    checkpoint[done] = fakeCell(done);
    FabricRun run("job-7", opts, 2, fastFabric(), checkpoint,
                  counters);

    FabricRun::Grant grant;
    ASSERT_TRUE(run.acquire(1, 0, grant));
    const std::string frame =
        buildLeaseGrant(run, grant, run.plan().shardCount);

    WireMessage msg;
    std::string error;
    ASSERT_TRUE(parseWireMessage(frame, msg, error)) << error;
    EXPECT_EQ("lease-grant", msg.type);
    EXPECT_EQ(2u, msg.version);

    LeaseGrant parsed;
    ASSERT_TRUE(parseLeaseGrant(msg, parsed, error)) << error;
    EXPECT_EQ("job-7", parsed.jobId);
    EXPECT_EQ(grant.shard, parsed.shard);
    EXPECT_EQ(run.plan().shardCount, parsed.shardCount);
    EXPECT_EQ(opts.configs, parsed.options.configs);
    EXPECT_EQ(opts.workloads, parsed.options.workloads);
    EXPECT_EQ(opts.retryLimits, parsed.options.retryLimits);
    EXPECT_EQ(opts.seeds, parsed.options.seeds);
    EXPECT_EQ(opts.trimEachSide, parsed.options.trimEachSide);
    EXPECT_EQ(opts.params.opsPerThread,
              parsed.options.params.opsPerThread);
    EXPECT_EQ(opts.params.seed, parsed.options.params.seed);
    EXPECT_EQ(opts.jobs, parsed.options.jobs);
    EXPECT_EQ(grant.skip, parsed.skip);

    // The whole point: the worker rebuilds the identical plan.
    const ShardPlan rebuilt =
        planShards(parsed.options, parsed.shardCount);
    EXPECT_EQ(run.plan().shards, rebuilt.shards);
}

TEST(FabricFrames, ShardResultRoundTripsThroughTheWire)
{
    DeadLetter failure;
    failure.workload = "mwobject";
    failure.config = "B";
    failure.error = "boom";
    failure.repro = "repro{v=1}";
    const std::vector<std::string> rows = {"row-a", "row-b"};
    const std::string frame =
        buildShardResult("w0", "job-7", 3, rows, {failure});

    WireMessage msg;
    std::string error;
    ASSERT_TRUE(parseWireMessage(frame, msg, error)) << error;
    EXPECT_EQ("shard-result", msg.type);
    EXPECT_EQ(2u, msg.version);
    EXPECT_EQ("w0", msg.text("worker"));
    EXPECT_EQ("job-7", msg.text("id"));
    EXPECT_EQ(3u, msg.number("shard"));
    EXPECT_EQ(rows, msg.textList("rows"));
    EXPECT_EQ(std::vector<std::string>{"mwobject"},
              msg.textList("fail-workloads"));
    EXPECT_EQ(std::vector<std::string>{"B"},
              msg.textList("fail-configs"));
    EXPECT_EQ(std::vector<std::string>{"boom"},
              msg.textList("fail-errors"));
    EXPECT_EQ(std::vector<std::string>{"repro{v=1}"},
              msg.textList("fail-repros"));
}

} // namespace
} // namespace clearsim
