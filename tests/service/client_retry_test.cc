/**
 * @file
 * connectWithRetry() tests: a client (or fabric worker) started
 * before its daemon must find the socket once it appears, with
 * backoff between attempts, and must give up cleanly when it never
 * does.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "service/client.hh"
#include "service/daemon.hh"

namespace clearsim
{
namespace
{

class ClientRetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::string("/tmp/clearsim_retry_") + info->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    socketPath() const
    {
        return dir_ + "/d.sock";
    }

    std::unique_ptr<Daemon>
    makeDaemon()
    {
        Daemon::Options options;
        options.socketPath = socketPath();
        options.scheduler.cachePath = dir_ + "/cache.csv";
        options.scheduler.dlqPath = dir_ + "/dlq.jsonl";
        options.scheduler.jobs = 2;
        return std::make_unique<Daemon>(options);
    }

    std::string dir_;
};

TEST_F(ClientRetryTest, GivesUpAfterTheAttemptBudget)
{
    ClientConnection connection;
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(
        connection.connectWithRetry(socketPath(), 3, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(connection.connected());
    // 3 attempts = 2 backoff sleeps, each at least ~12ms.
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(20));
}

TEST_F(ClientRetryTest, ZeroOrOneAttemptsMeansASingleTry)
{
    ClientConnection connection;
    std::string error;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(
        connection.connectWithRetry(socketPath(), 0, error));
    EXPECT_FALSE(
        connection.connectWithRetry(socketPath(), 1, error));
    // No backoff sleeps at all.
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST_F(ClientRetryTest, FindsASocketThatAppearsLate)
{
    // The daemon starts ~150ms after the client begins retrying —
    // the situation every fabric worker is in when coordinator and
    // workers are launched together (or the coordinator restarts).
    std::unique_ptr<Daemon> daemon;
    std::thread binder([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(150));
        daemon = makeDaemon();
    });

    ClientConnection connection;
    std::string error;
    EXPECT_TRUE(
        connection.connectWithRetry(socketPath(), 50, error))
        << error;
    EXPECT_TRUE(connection.connected());
    EXPECT_GE(connection.version(), 1u);
    binder.join();
    connection.disconnect();
    EXPECT_EQ(0u, connection.version());
}

TEST_F(ClientRetryTest, AStopFlagAbandonsTheRetryLoop)
{
    // A worker told to shut down mid-backoff must not sleep out
    // its whole attempt budget against a socket that never comes.
    ClientConnection connection;
    std::atomic<bool> stop{false};
    std::string error;
    std::thread stopper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        stop.store(true);
    });
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(connection.connectWithRetry(socketPath(), 100000,
                                             error, &stop));
    stopper.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    EXPECT_EQ("stopped", error);
}

TEST_F(ClientRetryTest, NegotiatesV2WhenRetrying)
{
    // The worker path requires v2; make sure retry preserves the
    // normal handshake result.
    auto daemon = makeDaemon();
    ClientConnection connection;
    std::string error;
    ASSERT_TRUE(
        connection.connectWithRetry(socketPath(), 5, error))
        << error;
    EXPECT_EQ(2u, connection.version());
}

} // namespace
} // namespace clearsim
