/**
 * @file
 * Wire-protocol tests: framing edge cases and the strict,
 * fail-closed message validation of clearsimd-wire-v1.
 */

#include <gtest/gtest.h>

#include <string>
#include <unistd.h>

#include "service/wire.hh"

namespace clearsim
{
namespace
{

/** A connected fd pair the framing helpers can run over. */
struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe() { EXPECT_EQ(0, ::pipe(fds)); }

    ~Pipe()
    {
        closeRead();
        closeWrite();
    }

    void
    closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }

    void
    closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }

    int readFd() const { return fds[0]; }
    int writeFd() const { return fds[1]; }
};

TEST(WireFraming, RoundTripsOneFrame)
{
    Pipe pipe;
    std::string error;
    ASSERT_TRUE(writeWireFrame(pipe.writeFd(), "hello bytes",
                               error));
    std::string payload;
    ASSERT_TRUE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_EQ("hello bytes", payload);
}

TEST(WireFraming, RoundTripsBinaryPayload)
{
    Pipe pipe;
    std::string error;
    std::string bytes("\x00\x01\xff\n\r\x80", 6);
    ASSERT_TRUE(writeWireFrame(pipe.writeFd(), bytes, error));
    std::string payload;
    ASSERT_TRUE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_EQ(bytes, payload);
}

TEST(WireFraming, CleanEofAtFrameBoundaryIsNotAnError)
{
    Pipe pipe;
    pipe.closeWrite();
    std::string payload, error;
    EXPECT_FALSE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_TRUE(error.empty());
}

TEST(WireFraming, TruncatedHeaderIsAProtocolError)
{
    Pipe pipe;
    const char partial[2] = {0, 0};
    ASSERT_EQ(2, ::write(pipe.writeFd(), partial, 2));
    pipe.closeWrite();
    std::string payload, error;
    EXPECT_FALSE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_NE(std::string::npos, error.find("header"));
}

TEST(WireFraming, TruncatedPayloadIsAProtocolError)
{
    Pipe pipe;
    // Header promises 10 bytes; only 4 arrive.
    const unsigned char header[4] = {0, 0, 0, 10};
    ASSERT_EQ(4, ::write(pipe.writeFd(), header, 4));
    ASSERT_EQ(4, ::write(pipe.writeFd(), "abcd", 4));
    pipe.closeWrite();
    std::string payload, error;
    EXPECT_FALSE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_NE(std::string::npos, error.find("payload"));
}

TEST(WireFraming, ZeroLengthFrameIsRejected)
{
    Pipe pipe;
    const unsigned char header[4] = {0, 0, 0, 0};
    ASSERT_EQ(4, ::write(pipe.writeFd(), header, 4));
    std::string payload, error;
    EXPECT_FALSE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_NE(std::string::npos, error.find("zero"));
}

TEST(WireFraming, OversizedFrameIsRejectedFromTheHeaderAlone)
{
    Pipe pipe;
    const std::uint32_t len = kWireMaxFrame + 1;
    const unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len)};
    ASSERT_EQ(4, ::write(pipe.writeFd(), header, 4));
    std::string payload, error;
    EXPECT_FALSE(readWireFrame(pipe.readFd(), payload, error));
    EXPECT_NE(std::string::npos, error.find("limit"));
}

TEST(WireMessages, EveryBuilderOutputParses)
{
    const std::string frames[] = {
        wireHello(),
        wireHelloOk(kWireSchema),
        wireAck("tag", "job-1", "queued"),
        wireProgress("job-1", 3, 10),
        wireCell("job-1", "w,B,1,1,1"),
        wireResult("job-1", "sweep-cache-csv", "payload"),
        wireFailed("job-1", "boom", "repro{...}"),
        wireFailed("job-1", "boom", ""),
        wireCancelled("job-1"),
        wireError("tag", "bad request"),
    };
    for (const std::string &frame : frames) {
        WireMessage msg;
        std::string error;
        EXPECT_TRUE(parseWireMessage(frame, msg, error))
            << frame << ": " << error;
    }
}

TEST(WireMessages, BuildersAreByteDeterministic)
{
    EXPECT_EQ(wireAck("t", "id", "queued"),
              wireAck("t", "id", "queued"));
    EXPECT_EQ(wireHello(), wireHello());
    EXPECT_EQ(wireProgress("id", 1, 2), wireProgress("id", 1, 2));
}

TEST(WireMessages, AccessorsReadTheParsedBody)
{
    WireMessage msg;
    std::string error;
    ASSERT_TRUE(parseWireMessage(wireProgress("job-9", 7, 42), msg,
                                 error))
        << error;
    EXPECT_EQ("progress", msg.type);
    EXPECT_EQ("job-9", msg.text("id"));
    EXPECT_EQ(7u, msg.number("done"));
    EXPECT_EQ(42u, msg.number("total"));
    EXPECT_EQ(0u, msg.number("absent"));
    EXPECT_EQ(5u, msg.number("absent", 5));
    EXPECT_EQ("", msg.text("absent"));
    EXPECT_TRUE(msg.textList("absent").empty());

    ASSERT_TRUE(parseWireMessage(wireHello(), msg, error));
    const std::vector<std::string> versions =
        msg.textList("versions");
    ASSERT_EQ(2u, versions.size());
    EXPECT_EQ(kWireSchema, versions[0]);
    EXPECT_EQ(kWireSchemaV2, versions[1]);
}

TEST(WireMessages, V2TypesRequireTheV2Schema)
{
    // A v2-only type under the v1 schema string is rejected like an
    // unknown type: an old server must never half-understand a
    // fabric frame.
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v1","type":"lease",)"
        R"("worker":"w0"})",
        msg, error));
    EXPECT_NE(std::string::npos, error.find(kWireSchemaV2))
        << error;

    ASSERT_TRUE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v2","type":"lease",)"
        R"("worker":"w0"})",
        msg, error))
        << error;
    EXPECT_EQ(2u, msg.version);
    EXPECT_EQ("lease", msg.type);

    // v1 types are valid under either schema string.
    ASSERT_TRUE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v2","type":"catalogue"})",
        msg, error))
        << error;
    EXPECT_EQ(2u, msg.version);
}

TEST(WireMessages, FabricBuildersRoundTrip)
{
    WireMessage msg;
    std::string error;
    ASSERT_TRUE(
        parseWireMessage(wireLease("t1", "w0"), msg, error))
        << error;
    EXPECT_EQ("lease", msg.type);
    EXPECT_EQ("w0", msg.text("worker"));

    ASSERT_TRUE(
        parseWireMessage(wireLeaseIdle(250), msg, error))
        << error;
    EXPECT_EQ("lease-idle", msg.type);
    EXPECT_EQ(250u, msg.number("retry-ms"));

    ASSERT_TRUE(parseWireMessage(wireLeaseRenew("w0", "job-1", 3),
                                 msg, error))
        << error;
    EXPECT_EQ("lease-renew", msg.type);
    EXPECT_EQ("job-1", msg.text("id"));
    EXPECT_EQ(3u, msg.number("shard"));

    ASSERT_TRUE(
        parseWireMessage(wireWorkerBye("t2", "w0"), msg, error))
        << error;
    EXPECT_EQ("worker-bye", msg.type);

    ASSERT_TRUE(parseWireMessage(
        wireJobAborted("job-1", "daemon shutting down"), msg,
        error))
        << error;
    EXPECT_EQ("job-aborted", msg.type);
    EXPECT_EQ(1u, msg.version);
    EXPECT_EQ("daemon shutting down", msg.text("message"));
}

TEST(WireMessages, RejectsUnknownSchema)
{
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v999","type":"hello"})", msg,
        error));
    EXPECT_NE(std::string::npos, error.find("schema"));
}

TEST(WireMessages, RejectsMissingSchema)
{
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(
        parseWireMessage(R"({"type":"hello"})", msg, error));
}

TEST(WireMessages, RejectsUnknownType)
{
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v1","type":"frobnicate"})",
        msg, error));
    EXPECT_NE(std::string::npos, error.find("frobnicate"));
}

TEST(WireMessages, RejectsUnknownField)
{
    // Fail closed: an old server must never silently drop a field
    // a newer client considered meaningful.
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v1","type":"run",)"
        R"("workload":"mwobject","priority":"high"})",
        msg, error));
    EXPECT_NE(std::string::npos, error.find("priority"));
}

TEST(WireMessages, RejectsFieldFromAnotherMessageType)
{
    // "state" belongs to ack, not to cancel.
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage(
        R"({"schema":"clearsimd-wire-v1","type":"cancel",)"
        R"("id":"x","state":"queued"})",
        msg, error));
    EXPECT_NE(std::string::npos, error.find("state"));
}

TEST(WireMessages, RejectsNonObjectPayloads)
{
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage("[1,2,3]", msg, error));
    EXPECT_FALSE(parseWireMessage("\"hello\"", msg, error));
    EXPECT_FALSE(parseWireMessage("42", msg, error));
}

TEST(WireMessages, RejectsMalformedJson)
{
    WireMessage msg;
    std::string error;
    EXPECT_FALSE(parseWireMessage("{\"schema\":", msg, error));
    EXPECT_FALSE(parseWireMessage("", msg, error));
    EXPECT_FALSE(parseWireMessage("\xff\xfe", msg, error));
}

} // namespace
} // namespace clearsim
