/**
 * @file
 * End-to-end fabric tests: a real Daemon acting as coordinator,
 * FabricWorker instances running in-process threads (the exact code
 * tools/clearsim_worker.cpp wraps), a ClientConnection submitting
 * fabric-sweep jobs. Pins the headline invariant at the service
 * level — the merged result is byte-identical to the engine run
 * locally — plus fabric-status and the shutdown-mid-sweep
 * regression (a dying daemon must say "job-aborted", not slam the
 * socket).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/wire.hh"
#include "service/worker.hh"

namespace clearsim
{
namespace
{

SweepOptions
benignSweep()
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    opts.jobs = 2;
    return opts;
}

/** Serialize a fabric-sweep request matching @p opts. */
std::string
fabricSweepRequest(const SweepOptions &opts, unsigned shards)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchemaV2);
    w.key("type");
    w.value("fabric-sweep");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("jobs");
    w.value(opts.jobs);
    w.key("shards");
    w.value(shards);
    w.endObject();
    return out;
}

std::string
fabricStatusRequest()
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchemaV2);
    w.key("type");
    w.value("fabric-status");
    w.endObject();
    return out;
}

/** The engine's canonical bytes for @p opts. */
std::string
localBaseline(const SweepOptions &opts)
{
    const SweepOutcome local =
        runSweepGrid(opts, {}, SweepObserver{});
    EXPECT_FALSE(local.cancelled);
    SweepSummary summary;
    for (const auto &[key, cell] : local.cells) {
        EXPECT_FALSE(cell.failed) << cell.error;
        summary[key] = CellSummary::fromCell(cell);
    }
    return serializeSweepCache(sweepOptionsHash(opts), summary);
}

/** An in-process FabricWorker on its own thread. */
class WorkerThread
{
  public:
    WorkerThread(const std::string &socket, const std::string &name)
    {
        FabricWorkerOptions options;
        options.socketPath = socket;
        options.name = name;
        worker_ = std::make_unique<FabricWorker>(options);
        thread_ = std::thread(
            [this] { status_ = worker_->run(stop_); });
    }

    ~WorkerThread() { join(); }

    void
    join()
    {
        stop_.store(true);
        if (thread_.joinable())
            thread_.join();
    }

    const FabricWorker::Totals &
    totals() const
    {
        return worker_->totals();
    }

    int status() const { return status_; }

  private:
    std::unique_ptr<FabricWorker> worker_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
    int status_ = -1;
};

class FabricDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::string("/tmp/clearsim_fab_") + info->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        startDaemon();
    }

    void
    TearDown() override
    {
        daemon_.reset();
        std::filesystem::remove_all(dir_);
    }

    void
    startDaemon()
    {
        Daemon::Options options;
        options.socketPath = dir_ + "/d.sock";
        options.scheduler.cachePath = dir_ + "/cache.csv";
        options.scheduler.dlqPath = dir_ + "/dlq.jsonl";
        options.scheduler.jobs = 2;
        daemon_ = std::make_unique<Daemon>(options);
    }

    std::unique_ptr<ClientConnection>
    client()
    {
        auto connection = std::make_unique<ClientConnection>();
        std::string error;
        EXPECT_TRUE(
            connection->connect(daemon_->socketPath(), error))
            << error;
        EXPECT_EQ(2u, connection->version());
        return connection;
    }

    WireMessage
    transact(ClientConnection &connection,
             const std::string &request,
             std::vector<WireMessage> *events = nullptr)
    {
        std::string error;
        EXPECT_TRUE(connection.send(request, error)) << error;
        WireMessage outcome;
        EXPECT_TRUE(connection.waitForOutcome(
            outcome, error,
            [&](const WireMessage &event) {
                if (events)
                    events->push_back(event);
            }))
            << error;
        return outcome;
    }

    std::string dir_;
    std::unique_ptr<Daemon> daemon_;
};

TEST_F(FabricDaemonTest, FabricSweepMatchesTheEngineByteForByte)
{
    const SweepOptions opts = benignSweep();
    const std::string expected = localBaseline(opts);

    WorkerThread w0(daemon_->socketPath(), "w0");
    WorkerThread w1(daemon_->socketPath(), "w1");

    auto connection = client();
    std::vector<WireMessage> events;
    const WireMessage outcome = transact(
        *connection, fabricSweepRequest(opts, 3), &events);
    ASSERT_EQ("result", outcome.type) << outcome.text("message");
    EXPECT_EQ("sweep-cache-csv", outcome.text("format"));
    EXPECT_EQ(expected, outcome.text("payload"));

    // Every row of the merged document was streamed exactly once,
    // no matter which worker produced it.
    std::vector<std::string> rows;
    for (const WireMessage &event : events)
        if (event.type == "cell")
            rows.push_back(event.text("row"));
    EXPECT_EQ(4u, rows.size());

    w0.join();
    w1.join();
    EXPECT_EQ(0, w0.status());
    EXPECT_EQ(0, w1.status());
    EXPECT_EQ(3u, w0.totals().shardsCompleted +
                      w1.totals().shardsCompleted);
    EXPECT_EQ(4u, w0.totals().cellsExecuted +
                      w1.totals().cellsExecuted);
}

TEST_F(FabricDaemonTest, FabricStatusExportsTheCounters)
{
    const SweepOptions opts = benignSweep();
    WorkerThread w0(daemon_->socketPath(), "status-worker");

    auto connection = client();
    const WireMessage outcome = transact(
        *connection, fabricSweepRequest(opts, 2));
    ASSERT_EQ("result", outcome.type) << outcome.text("message");

    const WireMessage status =
        transact(*connection, fabricStatusRequest());
    ASSERT_EQ("result", status.type);
    EXPECT_EQ("fabric-status-json", status.text("format"));

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(status.text("payload"), doc, error))
        << error;
    EXPECT_EQ("clearsim-fabric-status-v1",
              doc.find("schema")->text);
    EXPECT_EQ("", doc.find("active")->text); // run finished

    // The StatsRegistry block carries the fabric counters; after a
    // clean 2-shard run the bookkeeping is exact.
    const JsonValue *counters = doc.find("counters");
    ASSERT_NE(nullptr, counters);
    auto counter = [&](const char *name) -> std::uint64_t {
        const JsonValue *value = counters->find(name);
        EXPECT_NE(nullptr, value) << name;
        return value ? value->uintValue : 0;
    };
    EXPECT_EQ(1u, counter("fabric.jobs.completed"));
    EXPECT_EQ(0u, counter("fabric.jobs.failed"));
    EXPECT_EQ(2u, counter("fabric.shards.completed"));
    EXPECT_EQ(4u, counter("fabric.cells.executed"));
    EXPECT_EQ(0u, counter("fabric.shards.deadlettered"));
    EXPECT_EQ(2u, counter("fabric.results.accepted"));
    EXPECT_GE(counter("fabric.leases.granted"), 2u);

    // The worker is still connected and polling, so it shows up.
    const JsonValue *workers = doc.find("workers");
    ASSERT_NE(nullptr, workers);
    ASSERT_EQ(1u, workers->items.size());
    EXPECT_EQ("status-worker",
              workers->items[0].find("name")->text);
}

TEST_F(FabricDaemonTest, WorkerlessFabricSweepStaysQueuedUntilCancelled)
{
    // With no workers attached nothing leases; the job sits at
    // Running with zero progress until someone cancels it.
    const SweepOptions opts = benignSweep();
    auto connection = client();
    std::string error;
    ASSERT_TRUE(
        connection->send(fabricSweepRequest(opts, 2), error))
        << error;

    // Wait for the ack, then cancel by the acked id.
    WireMessage ack;
    ASSERT_TRUE(connection->receive(ack, error)) << error;
    ASSERT_EQ("ack", ack.type);
    const std::string id = ack.text("id");
    ASSERT_FALSE(id.empty());

    std::string cancel;
    JsonWriter w(cancel);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchemaV2);
    w.key("type");
    w.value("cancel");
    w.key("id");
    w.value(id);
    w.endObject();
    ASSERT_TRUE(connection->send(cancel, error)) << error;

    WireMessage outcome;
    ASSERT_TRUE(connection->waitForOutcome(outcome, error))
        << error;
    EXPECT_EQ("cancelled", outcome.type);
}

TEST_F(FabricDaemonTest, ShutdownMidSweepSendsJobAborted)
{
    // Satellite regression: a daemon dying while a fabric sweep is
    // streaming must flush a terminal job-aborted frame through the
    // outbox, not leave subscribers on a truncated read.
    const SweepOptions opts = benignSweep();
    auto connection = client();
    std::string error;
    ASSERT_TRUE(
        connection->send(fabricSweepRequest(opts, 2), error))
        << error;
    WireMessage ack;
    ASSERT_TRUE(connection->receive(ack, error)) << error;
    ASSERT_EQ("ack", ack.type);

    // No workers ever lease, so the job cannot finish; kill the
    // daemon under the subscriber.
    std::thread killer([this] { daemon_->stop(); });

    WireMessage outcome;
    ASSERT_TRUE(connection->waitForOutcome(outcome, error))
        << "expected a typed terminal frame, got: " << error;
    EXPECT_EQ("job-aborted", outcome.type);
    EXPECT_NE(std::string::npos,
              outcome.text("message").find("shutting down"));
    killer.join();
}

TEST_F(FabricDaemonTest, FabricResultLandsInTheSharedSweepCache)
{
    // fabric-sweep and plain sweep share one job id and one cache
    // line: a later plain sweep of the same options is answered
    // from the cache with the identical bytes.
    const SweepOptions opts = benignSweep();
    WorkerThread w0(daemon_->socketPath(), "w0");

    auto connection = client();
    const WireMessage first = transact(
        *connection, fabricSweepRequest(opts, 2));
    ASSERT_EQ("result", first.type) << first.text("message");
    w0.join();

    // Plain v1 sweep request for the same options.
    std::string request;
    JsonWriter w(request);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchema);
    w.key("type");
    w.value("sweep");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("jobs");
    w.value(opts.jobs);
    w.endObject();

    std::vector<WireMessage> events;
    const WireMessage second =
        transact(*connection, request, &events);
    ASSERT_EQ("result", second.type) << second.text("message");
    EXPECT_EQ(first.text("payload"), second.text("payload"));
    const WireMessage *ack = nullptr;
    for (const WireMessage &event : events)
        if (event.type == "ack")
            ack = &event;
    ASSERT_NE(nullptr, ack);
    EXPECT_EQ(0u, ack->text("state").find("dedup-"))
        << ack->text("state");
}

} // namespace
} // namespace clearsim
