/**
 * @file
 * The fabric's headline invariant, pinned end-to-end with real
 * worker *processes*: the merged sweep CSV is byte-identical to the
 * single-process engine for any worker count, with a worker
 * SIGKILLed mid-sweep, and across a coordinator crash + restart
 * (checkpoint resume, no completed cell re-executed).
 *
 * Workers are forked before the Daemon exists — connectWithRetry
 * finds the socket once the coordinator binds it, exactly like a
 * fleet launched by a job scheduler. Lives in the determinism suite
 * (ctest -L determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/json.hh"
#include "harness/sweep_cache.hh"
#include "harness/sweep_engine.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/wire.hh"
#include "service/worker.hh"

namespace clearsim
{
namespace
{

SweepOptions
benignSweep()
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject", "arrayswap", "stack"};
    opts.retryLimits = {1, 4};
    opts.seeds = 3;
    opts.params.opsPerThread = 4;
    opts.jobs = 2;
    return opts;
}

std::string
fabricSweepRequest(const SweepOptions &opts, unsigned shards)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(kWireSchemaV2);
    w.key("type");
    w.value("fabric-sweep");
    w.key("configs");
    w.beginArray();
    for (const std::string &spec : opts.configs)
        w.value(spec);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const std::string &name : opts.workloads)
        w.value(name);
    w.endArray();
    w.key("retries");
    w.beginArray();
    for (unsigned limit : opts.retryLimits)
        w.value(limit);
    w.endArray();
    w.key("seeds");
    w.value(opts.seeds);
    w.key("ops");
    w.value(opts.params.opsPerThread);
    w.key("threads");
    w.value(opts.params.threads);
    w.key("jobs");
    w.value(opts.jobs);
    w.key("shards");
    w.value(shards);
    w.endObject();
    return out;
}

/** The single-process ground truth, computed once per suite. */
const std::string &
baseline()
{
    static const std::string bytes = [] {
        const SweepOptions opts = benignSweep();
        const SweepOutcome local =
            runSweepGrid(opts, {}, SweepObserver{});
        SweepSummary summary;
        for (const auto &[key, cell] : local.cells)
            summary[key] = CellSummary::fromCell(cell);
        return serializeSweepCache(sweepOptionsHash(opts),
                                   summary);
    }();
    return bytes;
}

/**
 * Fork a worker process polling @p socket. The child never returns;
 * the parent gets its pid and SIGKILLs it when done.
 */
pid_t
spawnWorker(const std::string &socket, const std::string &name)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    FabricWorkerOptions options;
    options.socketPath = socket;
    options.name = name;
    options.connectAttempts = 2000;
    FabricWorker worker(options);
    static std::atomic<bool> never{false};
    worker.run(never);
    ::_exit(0);
}

void
reapWorker(pid_t pid)
{
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

class FabricDeterminismTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = std::string("/tmp/clearsim_fabdet_") + info->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        daemon_.reset();
        std::filesystem::remove_all(dir_);
    }

    std::string
    socketPath() const
    {
        return dir_ + "/d.sock";
    }

    std::string
    cachePath() const
    {
        return dir_ + "/cache.csv";
    }

    void
    startDaemon()
    {
        Daemon::Options options;
        options.socketPath = socketPath();
        options.scheduler.cachePath = cachePath();
        options.scheduler.dlqPath = dir_ + "/dlq.jsonl";
        options.scheduler.jobs = 2;
        daemon_ = std::make_unique<Daemon>(options);
    }

    /** Submit a fabric sweep, return the terminal message. */
    WireMessage
    submit(unsigned shards,
           const std::function<void(const WireMessage &)> &on_event =
               nullptr)
    {
        ClientConnection connection;
        std::string error;
        EXPECT_TRUE(connection.connect(socketPath(), error))
            << error;
        EXPECT_TRUE(connection.send(
            fabricSweepRequest(benignSweep(), shards), error))
            << error;
        WireMessage outcome;
        EXPECT_TRUE(
            connection.waitForOutcome(outcome, error, on_event))
            << error;
        return outcome;
    }

    std::string dir_;
    std::unique_ptr<Daemon> daemon_;
};

TEST_F(FabricDeterminismTest, AnyWorkerCountMergesIdenticalBytes)
{
    for (unsigned count : {1u, 2u, 4u}) {
        const std::string sub =
            dir_ + "/n" + std::to_string(count);
        std::filesystem::remove_all(sub);
        std::filesystem::create_directories(sub);
        // Fresh coordinator state per count: same socket path, new
        // cache — otherwise the second round would be answered from
        // the first round's cache instead of the fabric.
        Daemon::Options options;
        options.socketPath = socketPath();
        options.scheduler.cachePath = sub + "/cache.csv";
        options.scheduler.dlqPath = sub + "/dlq.jsonl";
        options.scheduler.jobs = 2;

        // Workers first, coordinator second: connectWithRetry must
        // bridge the gap.
        std::vector<pid_t> workers;
        for (unsigned i = 0; i < count; ++i)
            workers.push_back(spawnWorker(
                socketPath(), "w" + std::to_string(i)));
        daemon_ = std::make_unique<Daemon>(options);

        const WireMessage outcome = submit(/*shards=*/0);
        EXPECT_EQ("result", outcome.type)
            << outcome.text("message");
        EXPECT_EQ(baseline(), outcome.text("payload"))
            << "workers=" << count;

        for (pid_t pid : workers)
            reapWorker(pid);
        daemon_.reset();
    }
}

TEST_F(FabricDeterminismTest, SigkilledWorkerDoesNotChangeTheBytes)
{
    // Three workers, one murdered as soon as the first cell lands.
    // Its leases are released penalized on disconnect and re-leased
    // to the survivors; the merged bytes must not notice.
    std::vector<pid_t> workers;
    for (unsigned i = 0; i < 3; ++i)
        workers.push_back(
            spawnWorker(socketPath(), "k" + std::to_string(i)));
    startDaemon();

    std::atomic<bool> killed{false};
    const WireMessage outcome =
        submit(/*shards=*/0, [&](const WireMessage &event) {
            if (event.type == "cell" &&
                !killed.exchange(true)) {
                ::kill(workers[0], SIGKILL);
            }
        });
    EXPECT_TRUE(killed.load());
    EXPECT_EQ("result", outcome.type) << outcome.text("message");
    EXPECT_EQ(baseline(), outcome.text("payload"));

    for (pid_t pid : workers)
        reapWorker(pid);
}

TEST_F(FabricDeterminismTest, CoordinatorCrashResumesFromCheckpoint)
{
    // Round 1 runs in a forked child (daemon + one in-process
    // worker thread); the parent SIGKILLs it once the checkpoint
    // holds at least one completed shard. Round 2 restarts the
    // coordinator on the same cache path: completed cells are
    // resumed, not re-executed, and the final bytes are identical
    // to the uninterrupted single-process run.
    const std::string checkpoint = sweepCheckpointPath(cachePath());

    const pid_t child = ::fork();
    if (child == 0) {
        Daemon::Options options;
        options.socketPath = socketPath();
        options.scheduler.cachePath = cachePath();
        options.scheduler.dlqPath = dir_ + "/dlq.jsonl";
        options.scheduler.jobs = 2;
        Daemon daemon(options);

        FabricWorkerOptions wopts;
        wopts.socketPath = socketPath();
        wopts.name = "crashable";
        FabricWorker worker(wopts);
        std::atomic<bool> stop{false};
        std::thread runner([&] { worker.run(stop); });

        ClientConnection connection;
        std::string error;
        if (!connection.connect(socketPath(), error))
            ::_exit(2);
        if (!connection.send(
                fabricSweepRequest(benignSweep(), /*shards=*/0),
                error))
            ::_exit(2);
        WireMessage outcome;
        connection.waitForOutcome(outcome, error);
        stop.store(true);
        runner.join();
        ::_exit(0);
    }
    ASSERT_GT(child, 0);

    // Wait for the checkpoint to carry a header plus at least one
    // row, then kill the whole coordinator process.
    bool saw_checkpoint = false;
    for (int i = 0; i < 600; ++i) {
        std::ifstream in(checkpoint);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        if (std::count(text.begin(), text.end(), '\n') >= 2) {
            saw_checkpoint = true;
            break;
        }
        int status = 0;
        if (::waitpid(child, &status, WNOHANG) == child) {
            // Finished before we could kill it: the run completed
            // and the cache holds the full result. Still a valid
            // (if less interesting) round 1.
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    ::kill(child, SIGKILL);
    int status = 0;
    ::waitpid(child, &status, 0);

    // Round 2: restart on the same state, with a fresh worker.
    const pid_t worker = spawnWorker(socketPath(), "resumer");
    startDaemon();
    const WireMessage outcome = submit(/*shards=*/0);
    EXPECT_EQ("result", outcome.type) << outcome.text("message");
    EXPECT_EQ(baseline(), outcome.text("payload"));

    if (saw_checkpoint) {
        // The restarted coordinator must have resumed the
        // checkpointed cells instead of re-executing them.
        ClientConnection connection;
        std::string error;
        ASSERT_TRUE(connection.connect(socketPath(), error))
            << error;
        std::string request;
        JsonWriter w(request);
        w.beginObject();
        w.key("schema");
        w.value(kWireSchemaV2);
        w.key("type");
        w.value("fabric-status");
        w.endObject();
        ASSERT_TRUE(connection.send(request, error)) << error;
        WireMessage reply;
        ASSERT_TRUE(connection.waitForOutcome(reply, error))
            << error;
        ASSERT_EQ("result", reply.type);
        JsonValue doc;
        ASSERT_TRUE(parseJson(reply.text("payload"), doc, error))
            << error;
        const JsonValue *counters = doc.find("counters");
        ASSERT_NE(nullptr, counters);
        const JsonValue *resumed =
            counters->find("fabric.cells.resumed");
        ASSERT_NE(nullptr, resumed);
        EXPECT_GE(resumed->uintValue, 1u);
        const JsonValue *executed =
            counters->find("fabric.cells.executed");
        ASSERT_NE(nullptr, executed);
        // resumed + executed covers the grid exactly: nothing ran
        // twice.
        EXPECT_EQ(6u, resumed->uintValue + executed->uintValue);
    }

    reapWorker(worker);
    // The checkpoint is consumed on success.
    EXPECT_FALSE(std::filesystem::exists(checkpoint));
}

} // namespace
} // namespace clearsim
