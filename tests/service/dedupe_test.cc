/**
 * @file
 * Dedupe tests: canonical job identity and the classify lifecycle,
 * including the read-through to the on-disk sweep cache.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>

#include "harness/sweep_cache.hh"
#include "service/dedupe.hh"

namespace clearsim
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.threads = 4;
    params.opsPerThread = 8;
    params.seed = 7;
    params.scale = 2;
    return params;
}

TEST(DedupeIds, RunIdIsAReproStringOverTheCanonicalConfigHash)
{
    // The config field of the id is the hash of the *resolved*
    // config ("cfg-" + 16 hex digits), not the spec text — that is
    // what makes textual variants of one config collide below.
    const std::string id = runJobId("B", "mwobject", 4,
                                    smallParams());
    EXPECT_EQ(0u, id.find("run:repro{workload=mwobject;"
                          "config=cfg-"));
    const std::string::size_type cfg = id.find("config=cfg-") + 11;
    EXPECT_EQ(16u, id.find(';', cfg) - cfg);
    EXPECT_NE(std::string::npos,
              id.find(";threads=4;ops=8;scale=2;seed=7}"));
}

TEST(DedupeIds, EquivalentSpecTextsShareOneIdentity)
{
    // Same resolved config, three spellings: an override written as
    // a modifier, the modifier written as overrides, and a
    // reordered modifier list. All must dedupe to one execution.
    EXPECT_EQ(runJobId("C+watchdog", "bst", 2, smallParams()),
              runJobId("C:fault.watchdog=1", "bst", 2,
                       smallParams()));
    EXPECT_EQ(
        runJobId("C+watchdog+sle", "bst", 2, smallParams()),
        runJobId("C+sle+watchdog", "bst", 2, smallParams()));
    // The engine-composed retry suffix folds into the same
    // canonical form as a spec that spells maxRetries directly.
    EXPECT_EQ(runJobId("C", "bst", 2, smallParams()),
              runJobId("C:maxRetries=2", "bst", 2, smallParams()));

    // ...but config names must not leak into each other: presets
    // that resolve differently keep distinct identities.
    EXPECT_NE(runJobId("C", "bst", 2, smallParams()),
              runJobId("C+sle", "bst", 2, smallParams()));
}

TEST(DedupeIds, AnalyzeIdDiffersFromRunIdOnlyInKind)
{
    const std::string run = runJobId("C", "bst", 2, smallParams());
    const std::string analyze =
        analyzeJobId("C", "bst", 2, smallParams());
    EXPECT_NE(run, analyze);
    EXPECT_EQ(0u, run.find("run:"));
    EXPECT_EQ(0u, analyze.find("analyze:"));
    EXPECT_EQ(run.substr(4), analyze.substr(8));
}

TEST(DedupeIds, EveryParameterIsIdentityRelevant)
{
    const std::string base = runJobId("B", "mwobject", 4,
                                      smallParams());
    EXPECT_NE(base, runJobId("C", "mwobject", 4, smallParams()));
    EXPECT_NE(base, runJobId("B", "bst", 4, smallParams()));
    EXPECT_NE(base, runJobId("B", "mwobject", 5, smallParams()));
    WorkloadParams params = smallParams();
    params.seed = 8;
    EXPECT_NE(base, runJobId("B", "mwobject", 4, params));
}

TEST(DedupeIds, SweepIdIsTheOptionsHashInFixedWidthHex)
{
    SweepOptions opts;
    opts.configs = {"B", "C"};
    opts.workloads = {"mwobject"};
    char expected[32];
    std::snprintf(expected, sizeof expected, "sweep{%016" PRIx64 "}",
                  sweepOptionsHash(opts));
    EXPECT_EQ(expected, sweepJobId(opts));

    // The job count never affects results, so it must not affect
    // identity either — that is what lets a jobs=1 and a jobs=8
    // request dedupe into one execution.
    SweepOptions other = opts;
    other.jobs = 8;
    EXPECT_EQ(sweepJobId(opts), sweepJobId(other));

    other = opts;
    other.seeds += 1;
    EXPECT_NE(sweepJobId(opts), sweepJobId(other));
}

TEST(DedupeIds, StateNamesMatchTheWireProtocol)
{
    EXPECT_STREQ("queued", dedupeStateName(DedupeSource::None));
    EXPECT_STREQ("dedup-inflight",
                 dedupeStateName(DedupeSource::InFlight));
    EXPECT_STREQ("dedup-cached",
                 dedupeStateName(DedupeSource::Completed));
    EXPECT_STREQ("dedup-disk",
                 dedupeStateName(DedupeSource::DiskCache));
}

TEST(DedupeIndex, ClassifyFollowsTheJobLifecycle)
{
    DedupeIndex index;
    const std::string id = runJobId("B", "mwobject", 4,
                                    smallParams());
    std::string format, payload;
    EXPECT_EQ(DedupeSource::None,
              index.classify(id, nullptr, format, payload));

    index.markInFlight(id);
    EXPECT_EQ(DedupeSource::InFlight,
              index.classify(id, nullptr, format, payload));

    index.markCompleted(id, "run-json", "{\"stats\":1}");
    EXPECT_EQ(DedupeSource::Completed,
              index.classify(id, nullptr, format, payload));
    EXPECT_EQ("run-json", format);
    EXPECT_EQ("{\"stats\":1}", payload);

    // Forgetting (failed/cancelled) makes the spec runnable again.
    index.forget(id);
    EXPECT_EQ(DedupeSource::None,
              index.classify(id, nullptr, format, payload));
}

TEST(DedupeIndex, SweepMissFallsThroughToTheDiskCache)
{
    const std::string dir = "/tmp/clearsim_dedupe_disk_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string cache = dir + "/sweep.csv";

    SweepOptions opts;
    opts.configs = {"B"};
    opts.workloads = {"mwobject"};
    opts.retryLimits = {1};
    opts.seeds = 3;

    // Plant a completed sweep on disk, the way a past daemon (or
    // the CLI) would have left it.
    CellSummary cell;
    cell.workload = "mwobject";
    cell.config = "B";
    cell.bestRetryLimit = 1;
    cell.cycles = 123.5;
    cell.energy = 456.25;
    cell.commits = 12;
    SweepSummary summary;
    summary[{"mwobject", "B"}] = cell;
    SweepCacheStore store(cache);
    store.store(opts, summary);

    DedupeIndex index{SweepCacheStore(cache)};
    const std::string id = sweepJobId(opts);
    std::string format, payload;
    EXPECT_EQ(DedupeSource::DiskCache,
              index.classify(id, &opts, format, payload));
    EXPECT_EQ("sweep-cache-csv", format);
    EXPECT_EQ(serializeSweepCache(sweepOptionsHash(opts), summary),
              payload);

    // Different options hash to a different id: no false hit.
    SweepOptions other = opts;
    other.seeds = 4;
    EXPECT_EQ(DedupeSource::None,
              index.classify(sweepJobId(other), &other, format,
                             payload));

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace clearsim
