/** @file Unit tests for the simulated DRAM backing store. */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace clearsim
{
namespace
{

TEST(BackingStoreTest, UnwrittenReadsZero)
{
    BackingStore store;
    EXPECT_EQ(store.read(0x20000), 0u);
}

TEST(BackingStoreTest, ReadBackWrites)
{
    BackingStore store;
    store.write(0x20000, 0xdeadbeef);
    EXPECT_EQ(store.read(0x20000), 0xdeadbeefu);
}

TEST(BackingStoreTest, WordGranular)
{
    BackingStore store;
    store.write(0x20000, 1);
    store.write(0x20008, 2);
    EXPECT_EQ(store.read(0x20000), 1u);
    EXPECT_EQ(store.read(0x20003), 1u); // same word
    EXPECT_EQ(store.read(0x20008), 2u);
}

TEST(BackingStoreTest, AllocationsDoNotOverlap)
{
    BackingStore store;
    const Addr a = store.allocate(100);
    const Addr b = store.allocate(100);
    EXPECT_GE(b, a + 100);
}

TEST(BackingStoreTest, AllocationAlignment)
{
    BackingStore store;
    store.allocate(3);
    const Addr a = store.allocate(8, 64);
    EXPECT_EQ(a % 64, 0u);
    const Addr line = store.allocateLines(2);
    EXPECT_EQ(line % kLineBytes, 0u);
}

TEST(BackingStoreTest, AllocateLinesReservesFullLines)
{
    BackingStore store;
    const Addr a = store.allocateLines(2);
    const Addr b = store.allocateLines(1);
    EXPECT_GE(b, a + 2 * kLineBytes);
}

TEST(BackingStoreTest, AddressZeroIsNeverAllocated)
{
    BackingStore store;
    // Simulated data structures use 0 as a null pointer.
    EXPECT_GT(store.allocate(8), 0u);
}

} // namespace
} // namespace clearsim
