/** @file Unit tests for the full-map directory. */

#include <gtest/gtest.h>

#include <algorithm>

#include "mem/directory.hh"

namespace clearsim
{
namespace
{

TEST(DirectoryTest, FirstReadMakesSharer)
{
    Directory dir(16, 4);
    const DirectoryResult r = dir.onRead(0, 100);
    EXPECT_FALSE(r.remoteTransfer);
    EXPECT_TRUE(r.invalidate.empty());
    EXPECT_TRUE(dir.isSharer(0, 100));
    EXPECT_FALSE(dir.isExclusive(0, 100));
}

TEST(DirectoryTest, WriteMakesExclusive)
{
    Directory dir(16, 4);
    dir.onWrite(1, 100);
    EXPECT_TRUE(dir.isExclusive(1, 100));
    EXPECT_TRUE(dir.isSharer(1, 100));
}

TEST(DirectoryTest, WriteInvalidatesSharers)
{
    Directory dir(16, 4);
    dir.onRead(0, 100);
    dir.onRead(2, 100);
    const DirectoryResult r = dir.onWrite(1, 100);
    EXPECT_EQ(r.invalidate.size(), 2u);
    EXPECT_TRUE(std::count(r.invalidate.begin(), r.invalidate.end(),
                           0));
    EXPECT_TRUE(std::count(r.invalidate.begin(), r.invalidate.end(),
                           2));
    EXPECT_TRUE(dir.isExclusive(1, 100));
    EXPECT_FALSE(dir.isSharer(0, 100));
}

TEST(DirectoryTest, WriteInvalidatesRemoteOwner)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    const DirectoryResult r = dir.onWrite(1, 100);
    EXPECT_TRUE(r.remoteTransfer);
    ASSERT_EQ(r.invalidate.size(), 1u);
    EXPECT_EQ(r.invalidate[0], 0);
    EXPECT_TRUE(dir.isExclusive(1, 100));
}

TEST(DirectoryTest, ReadDowngradesRemoteOwner)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    const DirectoryResult r = dir.onRead(1, 100);
    EXPECT_TRUE(r.remoteTransfer);
    EXPECT_TRUE(r.invalidate.empty());
    EXPECT_FALSE(dir.isExclusive(0, 100));
    EXPECT_TRUE(dir.isSharer(0, 100));
    EXPECT_TRUE(dir.isSharer(1, 100));
}

TEST(DirectoryTest, OwnReadAfterWriteIsSilent)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    const DirectoryResult r = dir.onRead(0, 100);
    EXPECT_FALSE(r.remoteTransfer);
    EXPECT_TRUE(dir.isExclusive(0, 100));
}

TEST(DirectoryTest, RepeatWriteByOwnerIsSilent)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    const DirectoryResult r = dir.onWrite(0, 100);
    EXPECT_TRUE(r.invalidate.empty());
    EXPECT_FALSE(r.remoteTransfer);
}

TEST(DirectoryTest, DropSharerRemovesState)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    dir.dropSharer(0, 100);
    EXPECT_FALSE(dir.isSharer(0, 100));
    EXPECT_TRUE(dir.holders(100).empty());
}

TEST(DirectoryTest, HoldersListsEveryone)
{
    Directory dir(16, 4);
    dir.onRead(0, 100);
    dir.onRead(3, 100);
    const auto holders = dir.holders(100);
    EXPECT_EQ(holders.size(), 2u);
}

TEST(DirectoryTest, SetIndexIsLineModuloSets)
{
    Directory dir(16, 4);
    EXPECT_EQ(dir.setOf(0), 0u);
    EXPECT_EQ(dir.setOf(17), 1u);
    EXPECT_EQ(dir.setOf(15), 15u);
    EXPECT_EQ(dir.sets(), 16u);
}

TEST(DirectoryTest, LinesAreIndependent)
{
    Directory dir(16, 4);
    dir.onWrite(0, 100);
    dir.onWrite(1, 200);
    EXPECT_TRUE(dir.isExclusive(0, 100));
    EXPECT_TRUE(dir.isExclusive(1, 200));
}

} // namespace
} // namespace clearsim
