/** @file Unit tests for the memory hierarchy facade. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/memory_system.hh"

namespace clearsim
{
namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.numCores = 4;
    return cfg;
}

TEST(MemorySystemTest, ColdMissThenHit)
{
    MemorySystem mem(testConfig());
    const MemAccessResult miss = mem.access(0, 100, false, false);
    EXPECT_EQ(miss.serviceLevel, 4u);
    EXPECT_EQ(miss.latency, testConfig().cache.memLatency);

    const MemAccessResult hit = mem.access(0, 100, false, false);
    EXPECT_EQ(hit.serviceLevel, 1u);
    EXPECT_EQ(hit.latency, testConfig().cache.l1Latency);
}

TEST(MemorySystemTest, L3HitForOtherCore)
{
    MemorySystem mem(testConfig());
    mem.access(0, 100, false, false); // fills L3
    const MemAccessResult r = mem.access(1, 100, false, false);
    EXPECT_EQ(r.serviceLevel, 3u);
}

TEST(MemorySystemTest, RemoteExclusiveTransferChargesCrossbar)
{
    const SystemConfig cfg = testConfig();
    MemorySystem mem(cfg);
    mem.access(0, 100, true, false); // core 0 owns exclusively
    const MemAccessResult r = mem.access(1, 100, false, false);
    EXPECT_TRUE(r.remoteTransfer);
    EXPECT_GE(r.latency,
              cfg.cache.l3Latency + cfg.cache.remoteLatency);
}

TEST(MemorySystemTest, WriteInvalidatesOtherCores)
{
    MemorySystem mem(testConfig());
    mem.access(0, 100, false, false);
    mem.access(1, 100, false, false);
    const MemAccessResult r = mem.access(2, 100, true, false);
    EXPECT_EQ(r.invalidated.size(), 2u);
    // The victims lost their L1 copies.
    const MemAccessResult again = mem.access(0, 100, false, false);
    EXPECT_NE(again.serviceLevel, 1u);
}

TEST(MemorySystemTest, UpgradeMissOnWriteToSharedLine)
{
    const SystemConfig cfg = testConfig();
    MemorySystem mem(cfg);
    mem.access(0, 100, false, false);
    mem.access(1, 100, false, false);
    // Core 0 has the data but not the permission.
    const MemAccessResult r = mem.access(0, 100, true, false);
    EXPECT_GE(r.latency, cfg.cache.remoteLatency);
    EXPECT_EQ(r.invalidated.size(), 1u);
    EXPECT_TRUE(mem.hasExclusive(0, 100));
}

TEST(MemorySystemTest, HasExclusiveRequiresL1AndOwnership)
{
    MemorySystem mem(testConfig());
    EXPECT_FALSE(mem.hasExclusive(0, 100));
    mem.access(0, 100, false, false);
    EXPECT_FALSE(mem.hasExclusive(0, 100)); // shared only
    mem.access(0, 100, true, false);
    EXPECT_TRUE(mem.hasExclusive(0, 100));
}

TEST(MemorySystemTest, PinnedSetOverflowsIntoCapacityEvent)
{
    SystemConfig cfg = testConfig();
    MemorySystem mem(cfg);
    // Fill one L1 set (l1Ways lines mapping to set 0) with pins.
    const unsigned ways = cfg.cache.l1Ways;
    const unsigned sets = cfg.cache.l1Sets;
    for (unsigned i = 0; i < ways; ++i) {
        const MemAccessResult r =
            mem.access(0, i * sets, false, true);
        EXPECT_FALSE(r.capacityOverflow);
    }
    const MemAccessResult r = mem.access(0, ways * sets, false, true);
    EXPECT_TRUE(r.capacityOverflow);
    EXPECT_TRUE(mem.wouldOverflow(0, ways * sets));

    mem.unpinAll(0);
    const MemAccessResult after =
        mem.access(0, ways * sets, false, true);
    EXPECT_FALSE(after.capacityOverflow);
}

TEST(MemorySystemTest, DropLineRemovesOwnership)
{
    MemorySystem mem(testConfig());
    mem.access(0, 100, true, false);
    mem.dropLine(0, 100);
    EXPECT_FALSE(mem.hasExclusive(0, 100));
    EXPECT_FALSE(mem.directory().isSharer(0, 100));
}

TEST(MemorySystemTest, StatsAccumulate)
{
    MemorySystem mem(testConfig());
    mem.access(0, 100, false, false);
    mem.access(0, 100, false, false);
    EXPECT_EQ(mem.stats().memAccesses, 1u);
    EXPECT_EQ(mem.stats().l1Hits, 1u);
}

TEST(MemorySystemTest, DirSetMatchesDirectory)
{
    MemorySystem mem(testConfig());
    EXPECT_EQ(mem.dirSetOf(12345),
              mem.directory().setOf(12345));
}

TEST(MemorySystemTest, ResetTimingStateKeepsStore)
{
    MemorySystem mem(testConfig());
    mem.store().write(0x20000, 7);
    mem.access(0, 100, true, true);
    mem.resetTimingState();
    EXPECT_EQ(mem.store().read(0x20000), 7u);
    EXPECT_FALSE(mem.hasExclusive(0, 100));
    const MemAccessResult r = mem.access(0, 100, false, false);
    EXPECT_EQ(r.serviceLevel, 4u);
}

} // namespace
} // namespace clearsim
