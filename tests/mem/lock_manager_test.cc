/** @file Unit tests for the cacheline lock manager. */

#include <gtest/gtest.h>

#include "mem/lock_manager.hh"

namespace clearsim
{
namespace
{

TEST(LockManagerTest, TryLockAndHolder)
{
    LockManager locks;
    EXPECT_FALSE(locks.isLocked(10));
    EXPECT_TRUE(locks.tryLock(10, 0));
    EXPECT_TRUE(locks.isLocked(10));
    EXPECT_TRUE(locks.isLockedBy(10, 0));
    EXPECT_EQ(locks.holder(10), 0);
    EXPECT_FALSE(locks.tryLock(10, 1));
    EXPECT_TRUE(locks.tryLock(10, 0)); // reentrant for holder
}

TEST(LockManagerTest, UnlockWakesWaiters)
{
    LockManager locks;
    locks.tryLock(10, 0);
    int woken = 0;
    locks.onUnlock(10, [&] { ++woken; });
    locks.onUnlock(10, [&] { ++woken; });
    EXPECT_EQ(woken, 0);
    locks.unlock(10, 0);
    EXPECT_EQ(woken, 2);
    EXPECT_FALSE(locks.isLocked(10));
}

TEST(LockManagerTest, OnUnlockOfFreeLineFiresImmediately)
{
    LockManager locks;
    int fired = 0;
    locks.onUnlock(99, [&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(LockManagerTest, UnlockAllReleasesEverything)
{
    LockManager locks;
    locks.tryLock(1, 0);
    locks.tryLock(2, 0);
    locks.tryLock(3, 1);
    EXPECT_EQ(locks.heldCount(0), 2u);
    int woken = 0;
    locks.onUnlock(1, [&] { ++woken; });
    locks.onUnlock(2, [&] { ++woken; });
    locks.unlockAll(0);
    EXPECT_EQ(woken, 2);
    EXPECT_EQ(locks.heldCount(0), 0u);
    EXPECT_TRUE(locks.isLockedBy(3, 1));
}

TEST(LockManagerTest, ClassifyFreeLine)
{
    LockManager locks;
    EXPECT_EQ(locks.classifyAccess(5, 0, true),
              LockedLineResponse::Free);
    EXPECT_EQ(locks.classifyAccess(5, 0, false),
              LockedLineResponse::Free);
}

TEST(LockManagerTest, ClassifyOwnLockIsFree)
{
    LockManager locks;
    locks.tryLock(5, 2);
    EXPECT_EQ(locks.classifyAccess(5, 2, true),
              LockedLineResponse::Free);
}

TEST(LockManagerTest, NackableRequestsGetNacked)
{
    // The Figure 5 deadlock fix: nack-able loads abort instead of
    // waiting on a remotely locked line.
    LockManager locks;
    locks.tryLock(5, 0);
    EXPECT_EQ(locks.classifyAccess(5, 1, true),
              LockedLineResponse::Nack);
}

TEST(LockManagerTest, NonNackableRequestsGetRetry)
{
    // The Figure 6 fix: ordinary requests are told to retry so the
    // directory entry is not held in a transient state.
    LockManager locks;
    locks.tryLock(5, 0);
    EXPECT_EQ(locks.classifyAccess(5, 1, false),
              LockedLineResponse::Retry);
}

TEST(LockManagerTest, DirSetLockBlocksLineLocks)
{
    LockManager locks;
    locks.configureDirSets(16);
    EXPECT_TRUE(locks.tryLockDirSet(3, 0));
    // Line 19 maps to set 3.
    EXPECT_TRUE(locks.dirSetLockedByOther(19, 1));
    EXPECT_FALSE(locks.tryLock(19, 1));
    EXPECT_TRUE(locks.tryLock(19, 0)); // holder may lock inside
    locks.unlock(19, 0);
    locks.unlockDirSet(3, 0);
    EXPECT_TRUE(locks.tryLock(19, 1));
}

TEST(LockManagerTest, DirSetUnlockWakesSetWaiters)
{
    LockManager locks;
    locks.configureDirSets(16);
    locks.tryLockDirSet(3, 0);
    int woken = 0;
    locks.onDirSetUnlock(3, [&] { ++woken; });
    locks.unlockDirSet(3, 0);
    EXPECT_EQ(woken, 1);
}

TEST(LockManagerTest, DirSetLockDoesNotBlockOtherSets)
{
    LockManager locks;
    locks.configureDirSets(16);
    locks.tryLockDirSet(3, 0);
    EXPECT_TRUE(locks.tryLock(20, 1)); // set 4
}

TEST(LockManagerTest, StatsCount)
{
    LockManager locks;
    locks.tryLock(1, 0);
    locks.tryLock(2, 0);
    locks.countNack();
    locks.countRetry();
    EXPECT_EQ(locks.totalLocks(), 2u);
    EXPECT_EQ(locks.totalNacks(), 1u);
    EXPECT_EQ(locks.totalRetries(), 1u);
}

TEST(LockManagerTest, ResetClears)
{
    LockManager locks;
    locks.tryLock(1, 0);
    locks.tryLockDirSet(2, 0);
    locks.reset();
    EXPECT_FALSE(locks.isLocked(1));
    EXPECT_TRUE(locks.tryLockDirSet(2, 1));
}

} // namespace
} // namespace clearsim
