/** @file Unit tests for the set-associative cache tag model. */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"

namespace clearsim
{
namespace
{

// 4 sets x 2 ways; lines i and i+4 map to the same set.
CacheModel
smallCache()
{
    return CacheModel(4, 2);
}

TEST(CacheModelTest, InsertThenContains)
{
    CacheModel c = smallCache();
    EXPECT_FALSE(c.contains(1));
    EXPECT_TRUE(c.insert(1).inserted);
    EXPECT_TRUE(c.contains(1));
}

TEST(CacheModelTest, LruEviction)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.insert(4);
    c.touch(0); // 4 becomes LRU
    const CacheInsertResult r = c.insert(8);
    EXPECT_TRUE(r.inserted);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 4u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(4));
}

TEST(CacheModelTest, InsertOfResidentLineTouches)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.insert(4);
    c.insert(0); // refresh 0; 4 is LRU
    c.insert(8);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(4));
}

TEST(CacheModelTest, PinnedLinesAreNotVictims)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.pin(0);
    c.insert(4);
    c.insert(8); // must evict 4, not pinned 0
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(4));
    EXPECT_TRUE(c.contains(8));
}

TEST(CacheModelTest, AllWaysPinnedFailsInsert)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.insert(4);
    c.pin(0);
    c.pin(4);
    const CacheInsertResult r = c.insert(8);
    EXPECT_FALSE(r.inserted);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(4));
}

TEST(CacheModelTest, UnpinAllReleases)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.insert(4);
    c.pin(0);
    c.pin(4);
    c.unpinAll();
    EXPECT_TRUE(c.insert(8).inserted);
}

TEST(CacheModelTest, InvalidateRemovesLineAndPin)
{
    CacheModel c = smallCache();
    c.insert(0);
    c.pin(0);
    c.invalidate(0);
    EXPECT_FALSE(c.contains(0));
    EXPECT_FALSE(c.isPinned(0));
}

TEST(CacheModelTest, FreeWaysForCountsUnpinned)
{
    CacheModel c = smallCache();
    EXPECT_EQ(c.freeWaysFor(0), 2u);
    c.insert(0);
    c.pin(0);
    EXPECT_EQ(c.freeWaysFor(0), 1u);
    c.insert(4);
    c.pin(4);
    EXPECT_EQ(c.freeWaysFor(0), 0u);
    EXPECT_EQ(c.freeWaysFor(1), 2u); // other set unaffected
}

TEST(CacheModelTest, SetMapping)
{
    CacheModel c = smallCache();
    EXPECT_EQ(c.setOf(0), 0u);
    EXPECT_EQ(c.setOf(5), 1u);
    EXPECT_EQ(c.setOf(7), 3u);
    EXPECT_EQ(c.setOf(8), 0u);
}

TEST(CacheModelTest, ResetClearsEverything)
{
    CacheModel c = smallCache();
    c.insert(1);
    c.pin(1);
    c.reset();
    EXPECT_FALSE(c.contains(1));
    EXPECT_EQ(c.freeWaysFor(1), 2u);
}

} // namespace
} // namespace clearsim
