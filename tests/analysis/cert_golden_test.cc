/**
 * @file
 * Golden test of the clearsim-cert-v1 document: certificates built
 * from a capture run with pinned parameters must serialize
 * byte-for-byte to the committed tests/data/cert_golden.json, and
 * repeated builds must be byte-identical. Regenerate the golden
 * after intentional schema or analysis changes with:
 *
 *   clearsim_analyze --workload bitcoin,hashmap --config C \
 *       --ops 8 --threads 8 --seed 42 --quiet \
 *       --cert-json tests/data/cert_golden.json
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hh"
#include "analysis/certificate.hh"

namespace clearsim
{
namespace
{

AnalyzeRequest
goldenRequest(const std::string &workload)
{
    AnalyzeRequest request;
    request.config = "C";
    request.workload = workload;
    request.maxRetries = 4;
    request.params.threads = 8;
    request.params.opsPerThread = 8;
    request.params.scale = 1;
    request.params.seed = 42;
    return request;
}

std::string
goldenDocument()
{
    std::vector<CertificateSet> sets;
    for (const char *workload : {"bitcoin", "hashmap"}) {
        const AnalyzeOutcome outcome =
            analyzeWorkload(goldenRequest(workload));
        sets.push_back(
            buildCertificates(outcome.analysis, outcome.config));
    }
    return certJsonString(sets);
}

TEST(CertGolden, MatchesCommittedDocument)
{
    const std::string path =
        std::string(CLEARSIM_TEST_DATA_DIR) + "/cert_golden.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();

    EXPECT_EQ(goldenDocument(), buffer.str())
        << "certificate output drifted from " << path
        << " — regenerate it if the change is intentional "
           "(command in this file's header)";
}

TEST(CertGolden, BuildIsByteStable)
{
    EXPECT_EQ(goldenDocument(), goldenDocument());
}

} // namespace
} // namespace clearsim
