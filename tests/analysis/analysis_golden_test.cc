/**
 * @file
 * Golden test of the clearsim-analysis-v1 document: a capture run
 * with pinned parameters must serialize byte-for-byte to the
 * committed tests/data/analysis_golden.json, and repeated captures
 * must be byte-identical. Regenerate the golden after intentional
 * schema or analysis changes with:
 *
 *   clearsim_analyze --workload bitcoin,hashmap --config C \
 *       --ops 8 --threads 8 --seed 42 --quiet \
 *       --json tests/data/analysis_golden.json
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hh"
#include "analysis/report.hh"

namespace clearsim
{
namespace
{

AnalyzeRequest
goldenRequest(const std::string &workload)
{
    AnalyzeRequest request;
    request.config = "C";
    request.workload = workload;
    request.maxRetries = 4;
    request.params.threads = 8;
    request.params.opsPerThread = 8;
    request.params.scale = 1;
    request.params.seed = 42;
    return request;
}

std::string
goldenDocument()
{
    std::vector<AnalysisResult> analyses;
    for (const char *workload : {"bitcoin", "hashmap"})
        analyses.push_back(
            analyzeWorkload(goldenRequest(workload)).analysis);
    return analysisJsonString(analyses);
}

TEST(AnalysisGolden, MatchesCommittedDocument)
{
    const std::string path =
        std::string(CLEARSIM_TEST_DATA_DIR) + "/analysis_golden.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();

    EXPECT_EQ(goldenDocument(), buffer.str())
        << "analysis output drifted from " << path
        << " — regenerate it if the change is intentional "
           "(command in this file's header)";
}

TEST(AnalysisGolden, CaptureIsByteStable)
{
    EXPECT_EQ(goldenDocument(), goldenDocument());
}

} // namespace
} // namespace clearsim
