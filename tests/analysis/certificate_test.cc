/**
 * @file
 * Unit tests of the certifying analyzer's certificates: the premise
 * catalogue, the cert/analysis lockstep (a verdict recomputes from
 * its premises alone, on synthetic models and on real captures),
 * the single-retry-bound premise's machine contract, and the
 * parent-directory-creating JSON writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hh"
#include "analysis/analyzer.hh"
#include "analysis/certificate.hh"
#include "analysis/region_ir.hh"

namespace clearsim
{
namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 4;
    return cfg;
}

RegionModel
syntheticModel(RegionPc pc, unsigned lines, unsigned writes)
{
    RegionModel m;
    m.pc = pc;
    m.invocations = 1;
    m.attempts = 1;
    m.committedAttempts = 1;
    m.completeAttempts = 1;
    for (unsigned i = 0; i < lines; ++i) {
        const LineAddr line = pc * 1000 + i * 131;
        m.worstLines.push_back(line);
        if (i < writes) {
            m.writeLines.insert(line);
            m.worstWriteLines.push_back(line);
        } else {
            m.readLines.insert(line);
        }
    }
    std::sort(m.worstLines.begin(), m.worstLines.end());
    std::sort(m.worstWriteLines.begin(), m.worstWriteLines.end());
    m.maxDistinctLines = lines;
    m.maxWriteLines = writes;
    m.maxUops = 3 * lines;
    m.maxLoads = lines;
    m.maxStores = writes;
    m.maxL1SetLines = 1;
    return m;
}

/**
 * Re-derive the verdict from the premises alone, mirroring the
 * analyzer's hierarchy (capacity > indirection > lock-order). This
 * is the lockstep contract buildCertificates() documents.
 */
Verdict
verdictFromPremises(const RegionCertificate &cert)
{
    for (PremiseId id :
         {PremiseId::CapWindow, PremiseId::CapSq,
          PremiseId::CapL1Pin, PremiseId::CapFootprint,
          PremiseId::CapAlt}) {
        if (!cert.premise(id).holds)
            return Verdict::CapacityDoomed;
    }
    if (!cert.premise(PremiseId::IndOnePass).holds)
        return Verdict::UnboundedIndirection;
    if (!cert.premise(PremiseId::LockOrder).holds)
        return Verdict::LockOrderRisk;
    return Verdict::Eligible;
}

TEST(PremiseCatalogue, NamesKindsAndFalsifiersAreStable)
{
    EXPECT_EQ(kNumPremises, 9u);
    const char *names[kNumPremises] = {
        "cap.window",  "cap.sq",       "cap.l1pin",
        "cap.footprint", "cap.alt",    "ind.one-pass",
        "lock.order",  "conflict.quiescent",
        "bound.single-retry"};
    for (unsigned i = 0; i < kNumPremises; ++i) {
        const PremiseId id = static_cast<PremiseId>(i);
        EXPECT_STREQ(premiseName(id), names[i]);
        EXPECT_STRNE(premiseKindName(id), "?");
        EXPECT_STRNE(premiseFalsifier(id), "?");
    }
    EXPECT_STREQ(premiseKindName(PremiseId::CapAlt), "capacity");
    EXPECT_STREQ(premiseKindName(PremiseId::IndOnePass),
                 "indirection");
    EXPECT_STREQ(premiseKindName(PremiseId::LockOrder),
                 "lock-order");
    EXPECT_STREQ(premiseKindName(PremiseId::ConflictQuiescent),
                 "interference");
    EXPECT_STREQ(premiseKindName(PremiseId::SingleRetryBound),
                 "retry-bound");
}

TEST(Certificate, EveryRegionCarriesAllPremisesInIdOrder)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2);
    AnalysisResult analysis = Analyzer(cfg).analyze(models);
    const CertificateSet set = buildCertificates(analysis, cfg);

    ASSERT_EQ(set.regions.size(), 1u);
    const RegionCertificate &cert = set.regions[0];
    ASSERT_EQ(cert.premises.size(), kNumPremises);
    for (unsigned i = 0; i < kNumPremises; ++i)
        EXPECT_EQ(static_cast<unsigned>(cert.premises[i].id), i);
    EXPECT_EQ(set.find(0x10), &cert);
    EXPECT_EQ(set.find(0x11), nullptr);
}

TEST(Certificate, SyntheticVerdictsRecomputeFromPremises)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    // One region per verdict class.
    models[0x10] = syntheticModel(0x10, 4, 2); // eligible
    RegionModel sq = syntheticModel(0x20, 4, 2); // capacity (SQ)
    sq.maxStores = cfg.core.sqEntries + 1;
    models[0x20] = sq;
    models[0x30] = // capacity (ALT)
        syntheticModel(0x30, cfg.clear.altEntries + 1, 1);
    RegionModel ind = syntheticModel(0x40, 4, 2); // indirection
    ind.addrTainted = true;
    models[0x40] = ind;

    const AnalysisResult analysis = Analyzer(cfg).analyze(models);
    const CertificateSet set = buildCertificates(analysis, cfg);
    ASSERT_EQ(set.regions.size(), 4u);
    EXPECT_EQ(set.regions[0].verdict, Verdict::Eligible);
    EXPECT_EQ(set.regions[1].verdict, Verdict::CapacityDoomed);
    EXPECT_FALSE(
        set.regions[1].premise(PremiseId::CapSq).holds);
    EXPECT_EQ(set.regions[2].verdict, Verdict::CapacityDoomed);
    EXPECT_FALSE(
        set.regions[2].premise(PremiseId::CapAlt).holds);
    EXPECT_EQ(set.regions[3].verdict,
              Verdict::UnboundedIndirection);
    for (const RegionCertificate &cert : set.regions)
        EXPECT_EQ(verdictFromPremises(cert), cert.verdict)
            << "pc 0x" << std::hex << cert.pc;
}

TEST(Certificate, RealCapturesRecomputeFromPremises)
{
    for (const char *workload : {"sorted-list", "queue", "bst"}) {
        AnalyzeRequest request;
        request.config = "C";
        request.workload = workload;
        request.params.threads = 4;
        request.params.opsPerThread = 8;
        request.params.seed = 42;
        const AnalyzeOutcome outcome = analyzeWorkload(request);
        const CertificateSet set =
            buildCertificates(outcome.analysis, outcome.config);
        EXPECT_FALSE(set.regions.empty()) << workload;
        for (const RegionCertificate &cert : set.regions) {
            SCOPED_TRACE(std::string(workload) + " pc " +
                         std::to_string(cert.pc));
            EXPECT_EQ(verdictFromPremises(cert), cert.verdict);
        }
    }
}

TEST(Certificate, SingleRetryBoundStatesTheMachineContract)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2); // eligible
    models[0x20] = // doomed
        syntheticModel(0x20, cfg.clear.altEntries + 1, 1);
    const AnalysisResult analysis = Analyzer(cfg).analyze(models);

    // Under CLEAR the premise is claimed exactly for ELIGIBLE
    // regions, with the counted-retry budget as its bound.
    const CertificateSet with_clear =
        buildCertificates(analysis, cfg);
    const Premise &eligible =
        with_clear.regions[0].premise(PremiseId::SingleRetryBound);
    EXPECT_TRUE(eligible.holds);
    EXPECT_EQ(eligible.bound, cfg.maxRetries);
    EXPECT_FALSE(with_clear.regions[1]
                     .premise(PremiseId::SingleRetryBound)
                     .holds);

    // Without the CLEAR machinery nothing bounds the retries; the
    // premise is never claimed.
    SystemConfig baseline = cfg;
    baseline.clear.enabled = false;
    const CertificateSet without =
        buildCertificates(analysis, baseline);
    EXPECT_FALSE(without.regions[0]
                     .premise(PremiseId::SingleRetryBound)
                     .holds);
    EXPECT_TRUE(without.clearEnabled == false);
}

TEST(Certificate, JsonIsByteStable)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2);
    AnalysisResult analysis = Analyzer(cfg).analyze(models);
    analysis.workload = "synthetic";
    analysis.config = "C";
    const CertificateSet set = buildCertificates(analysis, cfg);
    EXPECT_EQ(certJsonString({set}), certJsonString({set}));
    EXPECT_NE(certJsonString({set}).find(kCertJsonSchema),
              std::string::npos);
}

TEST(Certificate, WriteCertJsonCreatesMissingParentDirs)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2);
    const CertificateSet set =
        buildCertificates(Analyzer(cfg).analyze(models), cfg);

    const std::string root =
        "/tmp/clearsim_cert_dir_test";
    std::filesystem::remove_all(root);
    const std::string path = root + "/a/b/certs.json";
    std::string error;
    ASSERT_TRUE(writeCertJson(path, {set}, error)) << error;

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), certJsonString({set}));
    std::filesystem::remove_all(root);
}

} // namespace
} // namespace clearsim
