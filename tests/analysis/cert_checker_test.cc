/**
 * @file
 * Unit tests of the CertChecker on synthetic certificates and trace
 * streams: the single-retry machine contract, conflict-quiescence
 * and lock-order latching, the finalize-time profile audit, the
 * false-DOOMED detection rule (including its cache-locked gating),
 * and the synthesized PremiseFalsified event flow.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cert_checker.hh"
#include "analysis/certificate.hh"

namespace clearsim
{
namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 2;
    cfg.maxRetries = 4;
    return cfg;
}

RegionCertificate
makeCert(RegionPc pc, Verdict verdict, unsigned retry_bound)
{
    RegionCertificate cert;
    cert.pc = pc;
    cert.verdict = verdict;
    for (unsigned i = 0; i < kNumPremises; ++i) {
        Premise premise;
        premise.id = static_cast<PremiseId>(i);
        premise.holds = true;
        cert.premises.push_back(premise);
    }
    cert.premises[static_cast<unsigned>(
                      PremiseId::SingleRetryBound)]
        .bound = retry_bound;
    return cert;
}

CertificateSet
makeSet(const SystemConfig &cfg,
        std::vector<RegionCertificate> regions)
{
    CertificateSet set;
    set.workload = "synthetic";
    set.config = "C";
    set.maxRetries = cfg.maxRetries;
    set.clearEnabled = cfg.clear.enabled;
    set.limits.robEntries = cfg.core.robEntries;
    set.limits.lqEntries = cfg.core.lqEntries;
    set.limits.sqEntries = cfg.core.sqEntries;
    set.limits.l1Ways = cfg.cache.l1Ways;
    set.limits.altEntries = cfg.clear.altEntries;
    set.limits.footprintCapacity = 2 * cfg.clear.altEntries;
    set.regions = std::move(regions);
    return set;
}

TraceEvent
commitEvent(RegionPc pc, ExecMode mode, unsigned counted_retries,
            Cycle cycle = 10)
{
    TraceEvent event;
    event.cycle = cycle;
    event.core = 0;
    event.pc = pc;
    event.kind = TraceKind::Commit;
    event.mode = mode;
    event.countedRetries = counted_retries;
    return event;
}

TEST(CertChecker, RetryBoundFollowsTheMachineContract)
{
    const SystemConfig cfg = testConfig();
    const CertificateSet set = makeSet(
        cfg, {makeCert(0x10, Verdict::Eligible, cfg.maxRetries)});
    CertChecker checker(set, cfg);

    // Committing under the budget is the certified behaviour.
    checker.onTrace(commitEvent(0x10, ExecMode::Speculative, 0));
    checker.onTrace(
        commitEvent(0x10, ExecMode::NsCl, cfg.maxRetries - 1));
    EXPECT_FALSE(checker.anyFalsified());

    // A fallback commit is the sanctioned escape hatch, never a
    // falsification, whatever its retry count.
    checker.onTrace(
        commitEvent(0x10, ExecMode::Fallback, cfg.maxRetries + 3));
    EXPECT_FALSE(checker.anyFalsified());

    // A non-fallback commit that consumed the whole budget breaks
    // the premise; the latch fires once per (region, premise).
    checker.onTrace(
        commitEvent(0x10, ExecMode::SCl, cfg.maxRetries));
    EXPECT_TRUE(checker.anyFalsified());
    checker.onTrace(
        commitEvent(0x10, ExecMode::SCl, cfg.maxRetries + 1));
    EXPECT_EQ(checker.falsificationCount(), 1u);
    EXPECT_EQ(checker.outcomes().at(0x10).retryBoundViolations, 2u);

    HtmStats stats;
    checker.finalize(stats, 100);
    ASSERT_EQ(checker.mispredicts().size(), 1u);
    const Mispredict &record = checker.mispredicts()[0];
    EXPECT_EQ(record.kind, MispredictKind::FalseEligible);
    EXPECT_EQ(record.premise, PremiseId::SingleRetryBound);
    EXPECT_EQ(record.pc, 0x10u);
    EXPECT_EQ(record.observed, cfg.maxRetries);
    EXPECT_EQ(record.bound, cfg.maxRetries);
}

TEST(CertChecker, ConflictAbortBreaksQuiescence)
{
    const SystemConfig cfg = testConfig();
    const CertificateSet set =
        makeSet(cfg, {makeCert(0x20, Verdict::Eligible, 0)});
    CertChecker checker(set, cfg);
    checker.setRepro("repro{synthetic}");

    TraceEvent abort;
    abort.cycle = 7;
    abort.core = 1;
    abort.pc = 0x20;
    abort.kind = TraceKind::Abort;
    abort.reason = AbortReason::MemoryConflict;
    checker.onTrace(abort);
    EXPECT_TRUE(checker.anyFalsified());

    HtmStats stats;
    checker.finalize(stats, 100);
    ASSERT_EQ(checker.mispredicts().size(), 1u);
    EXPECT_EQ(checker.mispredicts()[0].kind,
              MispredictKind::InterferenceUnderestimate);
    EXPECT_EQ(checker.mispredicts()[0].premise,
              PremiseId::ConflictQuiescent);
    EXPECT_EQ(checker.mispredicts()[0].repro, "repro{synthetic}");
}

TEST(CertChecker, OutOfOrderLockBreaksTheOrderProof)
{
    const SystemConfig cfg = testConfig();
    const CertificateSet set =
        makeSet(cfg, {makeCert(0x30, Verdict::Eligible, 0)});
    CertChecker checker(set, cfg);

    TraceEvent begin;
    begin.core = 0;
    begin.pc = 0x30;
    begin.kind = TraceKind::AttemptBegin;
    begin.mode = ExecMode::SCl;
    checker.onTrace(begin);

    auto lock = [](LineAddr line) {
        TraceEvent event;
        event.core = 0;
        event.kind = TraceKind::LineLockAcquired;
        LockPayload payload;
        payload.line = line;
        event.payload = payload;
        return event;
    };
    // Directory sets ascend with the line address for small lines,
    // so 5 then 4 is a strictly decreasing (set, line) pair.
    checker.onTrace(lock(5));
    EXPECT_FALSE(checker.anyFalsified());
    checker.onTrace(lock(4));
    EXPECT_TRUE(checker.anyFalsified());

    HtmStats stats;
    checker.finalize(stats, 100);
    ASSERT_EQ(checker.mispredicts().size(), 1u);
    EXPECT_EQ(checker.mispredicts()[0].kind,
              MispredictKind::OrderProofViolated);
    EXPECT_EQ(checker.mispredicts()[0].pc, 0x30u);
}

TEST(CertChecker, FinalizeAuditsProfileCounters)
{
    const SystemConfig cfg = testConfig();
    RegionCertificate cert =
        makeCert(0x40, Verdict::Eligible, cfg.maxRetries);
    // Give the window premise a real bound (in-core scope).
    cert.premises[static_cast<unsigned>(PremiseId::CapWindow)]
        .bound = cfg.core.robEntries;
    const CertificateSet set = makeSet(cfg, {cert});
    CertChecker checker(set, cfg);

    HtmStats stats;
    RegionProfile &profile = stats.regions[0x40];
    profile.maxAttemptUops = cfg.core.robEntries + 1;
    checker.finalize(stats, 500);

    ASSERT_EQ(checker.mispredicts().size(), 1u);
    const Mispredict &record = checker.mispredicts()[0];
    EXPECT_EQ(record.kind, MispredictKind::FalseEligible);
    EXPECT_EQ(record.premise, PremiseId::CapWindow);
    EXPECT_EQ(record.observed, cfg.core.robEntries + 1);
    EXPECT_EQ(record.bound, cfg.core.robEntries);
    EXPECT_EQ(record.cycle, 500u);
}

TEST(CertChecker, FalseDoomedNeedsACleanSpeculativeRun)
{
    const SystemConfig cfg = testConfig();
    RegionCertificate doomed =
        makeCert(0x50, Verdict::CapacityDoomed, 0);
    doomed.premises[static_cast<unsigned>(PremiseId::CapAlt)]
        .holds = false;
    doomed.premises[static_cast<unsigned>(PremiseId::CapAlt)]
        .bound = cfg.clear.altEntries;
    const CertificateSet set = makeSet(cfg, {doomed});

    // Every attempt commits speculatively with a footprint beyond
    // the ALT: the doom never materialized (the footprint limits
    // only bind in the cache-locked modes) — false-DOOMED, blaming
    // the failed ALT premise.
    {
        CertChecker checker(set, cfg);
        checker.onTrace(
            commitEvent(0x50, ExecMode::Speculative, 0));
        HtmStats stats;
        RegionProfile &profile = stats.regions[0x50];
        profile.maxFootprintLines = cfg.clear.altEntries + 10;
        checker.finalize(stats, 100);
        ASSERT_EQ(checker.mispredicts().size(), 1u);
        EXPECT_EQ(checker.mispredicts()[0].kind,
                  MispredictKind::FalseDoomed);
        EXPECT_EQ(checker.mispredicts()[0].premise,
                  PremiseId::CapAlt);
    }

    // The same profile with a cache-locked commit exercised the
    // footprint limits for real: the verdict was right, no
    // mispredict.
    {
        CertChecker checker(set, cfg);
        checker.onTrace(
            commitEvent(0x50, ExecMode::Speculative, 0));
        checker.onTrace(commitEvent(0x50, ExecMode::SCl, 1));
        HtmStats stats;
        RegionProfile &profile = stats.regions[0x50];
        profile.maxFootprintLines = cfg.clear.altEntries + 10;
        checker.finalize(stats, 100);
        EXPECT_TRUE(checker.mispredicts().empty());
    }

    // A capacity abort also vindicates the verdict.
    {
        CertChecker checker(set, cfg);
        checker.onTrace(
            commitEvent(0x50, ExecMode::Speculative, 0));
        HtmStats stats;
        RegionProfile &profile = stats.regions[0x50];
        profile.capacityAborts = 1;
        checker.finalize(stats, 100);
        EXPECT_TRUE(checker.mispredicts().empty());
    }
}

TEST(CertChecker, FalsificationsFlowDownstreamAsTraceEvents)
{
    const SystemConfig cfg = testConfig();
    const CertificateSet set = makeSet(
        cfg, {makeCert(0x60, Verdict::Eligible, cfg.maxRetries)});
    CertChecker checker(set, cfg);

    std::vector<TraceEvent> seen;
    checker.setDownstream(
        [&seen](const TraceEvent &event) { seen.push_back(event); });
    checker.onTrace(
        commitEvent(0x60, ExecMode::SCl, cfg.maxRetries, 42));

    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].kind, TraceKind::PremiseFalsified);
    EXPECT_EQ(seen[0].pc, 0x60u);
    EXPECT_EQ(seen[0].cycle, 42u);
    const auto *payload =
        std::get_if<PremisePayload>(&seen[0].payload);
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->premise,
              static_cast<std::uint32_t>(
                  PremiseId::SingleRetryBound));
    EXPECT_EQ(payload->observed, cfg.maxRetries);
    ASSERT_EQ(checker.falsifiedEvents().size(), 1u);
    EXPECT_EQ(checker.falsifiedEvents()[0].pc, 0x60u);
}

} // namespace
} // namespace clearsim
