/**
 * @file
 * Capture-config == run-config pinning (the --analyze bugfix).
 *
 * An analysis is only meaningful if its capture pass ran under
 * exactly the configuration the subsequent measurement run
 * executes. These tests pin that contract for decorated specs
 * (modifiers plus :key=value overrides) across the shared
 * resolution paths: analyzeWithConfig() captures under the very
 * config it is given, and the engine-composed retry spec resolves
 * to the same canonical config as one spelling maxRetries directly.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyze.hh"
#include "fault/fault_config.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"
#include "policy/region_policy.hh"

namespace clearsim
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.threads = 4;
    params.opsPerThread = 4;
    params.seed = 9;
    return params;
}

TEST(AnalyzeConfigPinning, CaptureRunsUnderTheExactRunConfig)
{
    // A spec with a modifier and two overrides — the shapes that
    // historically diverged between the analyze and run paths.
    const std::string spec =
        "C+scl-all-reads:altEntries=64:maxRetries=2";
    const SystemConfig run_cfg = makeConfigFromSpec(spec);

    const AnalyzeOutcome outcome =
        analyzeWithConfig(run_cfg, "mwobject", smallParams());

    // The capture config is the run config, field for field.
    EXPECT_EQ(canonicalConfigString(run_cfg),
              canonicalConfigString(outcome.config));
    // And the analysis is labeled with the spec it resolved from.
    EXPECT_EQ(spec, outcome.analysis.config);
}

TEST(AnalyzeConfigPinning, EngineComposedSpecMatchesExplicitSpec)
{
    // The sweep engine, scheduler and dedupe all name a point by
    // folding the retry limit into the spec through
    // specWithRetryLimit(); that composition must resolve to the
    // same canonical config as a user writing :maxRetries directly.
    EXPECT_EQ("C:maxRetries=3", specWithRetryLimit("C", 3));
    EXPECT_EQ("C+sle:maxRetries=3", specWithRetryLimit("C+sle", 3));
    // An existing limit is replaced, never duplicated (a duplicate
    // key is a hard parse error now).
    EXPECT_EQ("C:maxRetries=5",
              specWithRetryLimit("C:maxRetries=2", 5));
    EXPECT_EQ("C+sle:altEntries=8:maxRetries=5",
              specWithRetryLimit("C+sle:maxRetries=2:altEntries=8",
                                 5));

    EXPECT_EQ(canonicalConfigString(makeConfigFromSpec(
                  specWithRetryLimit("C+scl-all-reads:altEntries=64",
                                     2))),
              canonicalConfigString(makeConfigFromSpec(
                  "C+scl-all-reads:altEntries=64:maxRetries=2")));
}

TEST(AnalyzeConfigPinning, AdaptiveCaptureSharesTheRunConfig)
{
    // The preset-"A" capture pass differs from the measured config
    // in exactly two fields — adaptivity off (no table exists yet)
    // and the fault plan zeroed (capture is fault-free) — and in
    // nothing else. Building the table through buildRegionPolicy()
    // and by hand from that capture config must agree.
    const SystemConfig cfg =
        makeConfigFromSpec("A+faults-nack-storm");
    const WorkloadParams params = smallParams();

    const RegionPolicyTable direct =
        buildRegionPolicy(cfg, "mwobject", params);

    SystemConfig capture = cfg;
    capture.adapt.enabled = false;
    capture.fault = FaultConfig{};
    const RegionPolicyTable manual = RegionPolicyTable::fromVerdicts(
        verdictMap(
            analyzeWithConfig(capture, "mwobject", params).analysis),
        cfg);

    ASSERT_EQ(manual.decisions().size(), direct.decisions().size());
    auto it = manual.decisions().begin();
    for (const auto &[pc, decision] : direct.decisions()) {
        EXPECT_EQ(it->first, pc);
        EXPECT_EQ(it->second.verdict, decision.verdict);
        EXPECT_EQ(it->second.action, decision.action);
        EXPECT_EQ(it->second.retryBudget, decision.retryBudget);
        ++it;
    }
    EXPECT_FALSE(direct.empty());
}

} // namespace
} // namespace clearsim
