/**
 * @file
 * Unit tests of the static analyzer: recorder aggregation, the four
 * passes on synthetic region models, and the report serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "analysis/region_ir.hh"
#include "analysis/report.hh"
#include "common/json.hh"

namespace clearsim
{
namespace
{

SystemConfig
testConfig()
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 4;
    return cfg;
}

IrOp
loadOp(LineAddr line, std::uint16_t depth = 0, bool tainted = false)
{
    return IrOp{IrOpKind::Load, line, 1, depth, tainted};
}

IrOp
storeOp(LineAddr line, std::uint16_t depth = 0, bool tainted = false)
{
    return IrOp{IrOpKind::Store, line, 1, depth, tainted};
}

TEST(RegionRecorder, AggregatesAttemptMaxima)
{
    RegionRecorder rec(testConfig());
    rec.onInvocationBegin(0, 0x100);
    rec.onAttemptBegin(0, 0x100, ExecMode::Speculative);
    rec.onOp(0, IrOp{IrOpKind::Alu, 0, 5, 0, false});
    rec.onOp(0, loadOp(10));
    rec.onOp(0, loadOp(11));
    rec.onOp(0, storeOp(10));
    rec.onAttemptEnd(0, true, true);
    rec.onInvocationEnd(0);

    const auto &models = rec.models();
    ASSERT_EQ(models.size(), 1u);
    const RegionModel &m = models.at(0x100);
    EXPECT_EQ(m.invocations, 1u);
    EXPECT_EQ(m.attempts, 1u);
    EXPECT_EQ(m.committedAttempts, 1u);
    EXPECT_EQ(m.completeAttempts, 1u);
    EXPECT_EQ(m.maxDistinctLines, 2u);
    EXPECT_EQ(m.maxWriteLines, 1u);
    EXPECT_EQ(m.maxUops, 8u); // 5 alu + 2 loads + 1 store
    EXPECT_EQ(m.maxLoads, 2u);
    EXPECT_EQ(m.maxStores, 1u);
    EXPECT_FALSE(m.addrTainted);
    EXPECT_FALSE(m.footprintVaries);
    ASSERT_EQ(m.worstLines.size(), 2u);
    EXPECT_EQ(m.worstWriteLines,
              std::vector<LineAddr>({LineAddr(10)}));
    // Line 10 was written (read-then-write folds into the write
    // set); line 11 only read.
    EXPECT_TRUE(m.writeLines.count(10));
    EXPECT_TRUE(m.readLines.count(11));
}

TEST(RegionRecorder, TracksProvenanceAndVariation)
{
    RegionRecorder rec(testConfig());
    rec.onInvocationBegin(1, 0x200);
    rec.onAttemptBegin(1, 0x200, ExecMode::Speculative);
    rec.onOp(1, IrOp{IrOpKind::AddrUse, 0, 1, 2, true});
    rec.onOp(1, loadOp(20, 2, true));
    rec.onAttemptEnd(1, true, false);
    rec.onAttemptBegin(1, 0x200, ExecMode::Speculative);
    rec.onOp(1, loadOp(21));
    rec.onOp(1, IrOp{IrOpKind::Branch, 0, 1, 3, true});
    rec.onAttemptEnd(1, true, true);
    rec.onInvocationEnd(1);

    const RegionModel &m = rec.models().at(0x200);
    EXPECT_EQ(m.attempts, 2u);
    EXPECT_TRUE(m.addrTainted);
    EXPECT_TRUE(m.branchTainted);
    EXPECT_EQ(m.maxChaseDepth, 3u);
    // The two complete attempts touched different lines.
    EXPECT_TRUE(m.footprintVaries);
}

TEST(RegionRecorder, CountsL1SetPressure)
{
    const SystemConfig cfg = testConfig();
    RegionRecorder rec(cfg);
    rec.onInvocationBegin(0, 0x300);
    rec.onAttemptBegin(0, 0x300, ExecMode::Speculative);
    // Three lines mapping to the same L1 set, one elsewhere.
    const unsigned sets = cfg.cache.l1Sets;
    rec.onOp(0, loadOp(7));
    rec.onOp(0, loadOp(7 + sets));
    rec.onOp(0, loadOp(7 + 2 * sets));
    rec.onOp(0, loadOp(8));
    rec.onAttemptEnd(0, true, true);

    EXPECT_EQ(rec.models().at(0x300).maxL1SetLines, 3u);
}

RegionModel
syntheticModel(RegionPc pc, unsigned lines, unsigned writes)
{
    RegionModel m;
    m.pc = pc;
    m.invocations = 1;
    m.attempts = 1;
    m.committedAttempts = 1;
    m.completeAttempts = 1;
    for (unsigned i = 0; i < lines; ++i) {
        // Spread lines over sets to avoid accidental way pressure.
        const LineAddr line = pc * 1000 + i * 131;
        m.worstLines.push_back(line);
        if (i < writes) {
            m.writeLines.insert(line);
            m.worstWriteLines.push_back(line);
        } else {
            m.readLines.insert(line);
        }
    }
    std::sort(m.worstLines.begin(), m.worstLines.end());
    std::sort(m.worstWriteLines.begin(), m.worstWriteLines.end());
    m.maxDistinctLines = lines;
    m.maxWriteLines = writes;
    m.maxUops = 3 * lines;
    m.maxLoads = lines;
    m.maxStores = writes;
    m.maxL1SetLines = 1;
    return m;
}

TEST(Analyzer, EligibleRegion)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2);

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    ASSERT_EQ(result.regions.size(), 1u);
    const RegionAnalysis &r = result.regions[0];
    EXPECT_EQ(r.verdict, Verdict::Eligible);
    EXPECT_TRUE(r.capacity.altLockable);
    EXPECT_TRUE(r.indirection.onePassDiscoverable);
    EXPECT_TRUE(r.lockOrder.provenAcyclic);
    EXPECT_EQ(r.lockOrder.plannedLocks, 4u);
}

TEST(Analyzer, SqOverflowIsCapacityDoomed)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel m = syntheticModel(0x10, 4, 2);
    m.maxStores = cfg.core.sqEntries + 1;
    models[0x10] = m;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    EXPECT_EQ(result.regions[0].verdict, Verdict::CapacityDoomed);
    EXPECT_TRUE(result.regions[0].capacity.predictsSqFull);
}

TEST(Analyzer, AltOverflowIsCapacityDoomed)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] =
        syntheticModel(0x10, cfg.clear.altEntries + 1, 1);

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    EXPECT_EQ(result.regions[0].verdict, Verdict::CapacityDoomed);
    EXPECT_FALSE(result.regions[0].capacity.altLockable);
}

TEST(Analyzer, L1WayPressureIsCapacityDoomed)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel m = syntheticModel(0x10, 4, 2);
    m.maxL1SetLines = cfg.cache.l1Ways + 1;
    models[0x10] = m;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    EXPECT_EQ(result.regions[0].verdict, Verdict::CapacityDoomed);
    EXPECT_TRUE(result.regions[0].capacity.predictsPinOverflow);
}

TEST(Analyzer, TaintedAddressIsUnboundedIndirection)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel m = syntheticModel(0x10, 4, 2);
    m.addrTainted = true;
    m.maxChaseDepth = 3;
    models[0x10] = m;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    EXPECT_EQ(result.regions[0].verdict,
              Verdict::UnboundedIndirection);
    EXPECT_FALSE(result.regions[0].indirection.onePassDiscoverable);
    EXPECT_EQ(result.regions[0].indirection.maxChaseDepth, 3u);
}

TEST(Analyzer, CapacityOutranksIndirection)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel m = syntheticModel(0x10, cfg.clear.altEntries + 5, 1);
    m.addrTainted = true;
    models[0x10] = m;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    EXPECT_EQ(result.regions[0].verdict, Verdict::CapacityDoomed);
}

TEST(Analyzer, LockOrderProofCoversGroups)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel m = syntheticModel(0x10, 0, 0);
    // Two lines in directory set 5, one in set 9: two groups.
    const LineAddr dir_sets = cfg.cache.dirSets;
    for (LineAddr line : {LineAddr(5), LineAddr(5 + dir_sets),
                          LineAddr(9)}) {
        m.worstLines.push_back(line);
        m.readLines.insert(line);
    }
    std::sort(m.worstLines.begin(), m.worstLines.end());
    m.maxDistinctLines = 3;
    m.maxLoads = 3;
    m.maxUops = 3;
    m.maxL1SetLines = 1;
    models[0x10] = m;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    const LockOrderFindings &lock = result.regions[0].lockOrder;
    EXPECT_TRUE(lock.provenAcyclic);
    EXPECT_EQ(lock.plannedLocks, 3u);
    EXPECT_EQ(lock.conflictGroups, 2u);
    EXPECT_TRUE(lock.violations.empty());
}

TEST(Analyzer, CrossRegionCommonLinesConsistent)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel a = syntheticModel(0x10, 0, 0);
    RegionModel b = syntheticModel(0x20, 0, 0);
    b.pc = 0x20;
    for (LineAddr line : {LineAddr(100), LineAddr(200),
                          LineAddr(300)}) {
        a.worstLines.push_back(line);
        a.writeLines.insert(line);
        b.worstLines.push_back(line);
        b.writeLines.insert(line);
    }
    a.maxDistinctLines = b.maxDistinctLines = 3;
    a.maxL1SetLines = b.maxL1SetLines = 1;
    models[0x10] = a;
    models[0x20] = b;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    for (const RegionAnalysis &r : result.regions)
        EXPECT_TRUE(r.lockOrder.provenAcyclic);
}

TEST(Analyzer, ConflictGraphScoresOverlap)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    RegionModel a = syntheticModel(0x10, 0, 0);
    RegionModel b = syntheticModel(0x20, 0, 0);
    b.pc = 0x20;
    // Line 1: both write (score 2). Line 2: a writes, b reads
    // (score 1). Line 3: both read (score 0). Line 4: only a.
    a.writeLines = {1, 2};
    a.readLines = {3, 4};
    b.writeLines = {1};
    b.readLines = {2, 3};
    models[0x10] = a;
    models[0x20] = b;

    const AnalysisResult result = Analyzer(cfg).analyze(models);
    ASSERT_EQ(result.edges.size(), 1u);
    const ConflictEdge &edge = result.edges[0];
    EXPECT_EQ(edge.sharedWriteWrite, 1u);
    EXPECT_EQ(edge.sharedReadWrite, 1u);
    EXPECT_EQ(edge.score, 3u);
    EXPECT_EQ(result.regions[0].conflictScore, 3u);
    EXPECT_EQ(result.regions[1].conflictScore, 3u);
}

TEST(Analyzer, LimitsFollowConfiguredAltSize)
{
    SystemConfig cfg = testConfig();
    cfg.clear.altEntries = 128;
    const AnalysisResult result =
        Analyzer(cfg).analyze({});
    EXPECT_EQ(result.limits.altEntries, 128u);
    // The footprint bound is derived, not the hardcoded 64.
    EXPECT_EQ(result.limits.footprintCapacity, 256u);
    EXPECT_EQ(result.limits.robEntries, cfg.core.robEntries);
    EXPECT_EQ(result.limits.sqEntries, cfg.core.sqEntries);
}

TEST(Analyzer, VerdictNames)
{
    EXPECT_STREQ(verdictName(Verdict::Eligible), "ELIGIBLE");
    EXPECT_STREQ(verdictName(Verdict::CapacityDoomed),
                 "CAPACITY-DOOMED");
    EXPECT_STREQ(verdictName(Verdict::UnboundedIndirection),
                 "UNBOUNDED-INDIRECTION");
    EXPECT_STREQ(verdictName(Verdict::LockOrderRisk),
                 "LOCK-ORDER-RISK");
}

TEST(AnalysisReport, JsonRoundTripsAndIsStable)
{
    const SystemConfig cfg = testConfig();
    std::map<RegionPc, RegionModel> models;
    models[0x10] = syntheticModel(0x10, 4, 2);
    models[0x20] = syntheticModel(0x20, 2, 1);

    AnalysisResult analysis = Analyzer(cfg).analyze(models);
    analysis.workload = "synthetic";
    analysis.config = "C";
    analysis.seed = 7;

    const std::string doc1 = analysisJsonString({analysis});
    const std::string doc2 = analysisJsonString({analysis});
    EXPECT_EQ(doc1, doc2);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(doc1, root, error)) << error;
    ASSERT_NE(root.find("schema"), nullptr);
    EXPECT_EQ(root.find("schema")->text, kAnalysisJsonSchema);
    const JsonValue *analyses = root.find("analyses");
    ASSERT_NE(analyses, nullptr);
    ASSERT_EQ(analyses->items.size(), 1u);
    const JsonValue &entry = analyses->items[0];
    EXPECT_EQ(entry.find("workload")->text, "synthetic");
    const JsonValue *regions = entry.find("regions");
    ASSERT_NE(regions, nullptr);
    ASSERT_EQ(regions->items.size(), 2u);
    // Regions sorted by pc; every value is an integer or bool (no
    // doubles anywhere, the byte-stability contract).
    EXPECT_EQ(regions->items[0].find("pc")->asUint(), 0x10u);
    EXPECT_EQ(regions->items[1].find("pc")->asUint(), 0x20u);
    const JsonValue *cap = regions->items[0].find("capacity");
    ASSERT_NE(cap, nullptr);
    for (const auto &[key, value] : cap->members) {
        EXPECT_TRUE(value.type == JsonValue::Type::Uint ||
                    value.type == JsonValue::Type::Bool)
            << key;
    }
}

} // namespace
} // namespace clearsim
