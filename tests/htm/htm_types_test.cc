/** @file Unit tests for the abort taxonomy helpers. */

#include <gtest/gtest.h>

#include "htm/htm_types.hh"

namespace clearsim
{
namespace
{

TEST(HtmTypesTest, CategorizeMapsToFigure11Buckets)
{
    EXPECT_EQ(categorize(AbortReason::MemoryConflict),
              AbortCategory::MemoryConflict);
    EXPECT_EQ(categorize(AbortReason::Nacked),
              AbortCategory::MemoryConflict);
    EXPECT_EQ(categorize(AbortReason::ExplicitFallback),
              AbortCategory::ExplicitFallback);
    EXPECT_EQ(categorize(AbortReason::OtherFallback),
              AbortCategory::OtherFallback);
    EXPECT_EQ(categorize(AbortReason::CapacityOverflow),
              AbortCategory::Others);
    EXPECT_EQ(categorize(AbortReason::Deviation),
              AbortCategory::Others);
    EXPECT_EQ(categorize(AbortReason::Explicit),
              AbortCategory::Others);
}

TEST(HtmTypesTest, FallbackAbortsDoNotCountTowardRetries)
{
    // Section 7: "certain types of aborts do not increase the
    // counter to take the fallback path. An example would be
    // aborting because another thread took the fallback lock."
    EXPECT_FALSE(
        countsTowardRetryLimit(AbortReason::ExplicitFallback));
    EXPECT_FALSE(
        countsTowardRetryLimit(AbortReason::OtherFallback));
    EXPECT_TRUE(
        countsTowardRetryLimit(AbortReason::MemoryConflict));
    EXPECT_TRUE(countsTowardRetryLimit(AbortReason::Nacked));
    EXPECT_TRUE(
        countsTowardRetryLimit(AbortReason::CapacityOverflow));
    EXPECT_TRUE(countsTowardRetryLimit(AbortReason::Deviation));
    EXPECT_TRUE(countsTowardRetryLimit(AbortReason::Explicit));
}

TEST(HtmTypesTest, ModeAndCategoryCountsMatchEnums)
{
    EXPECT_EQ(kNumExecModes, 4u);
    EXPECT_EQ(kNumAbortCategories, 4u);
}

} // namespace
} // namespace clearsim
