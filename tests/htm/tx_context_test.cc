/**
 * @file
 * Behavioral tests of TxContext semantics, driven through a real
 * System with hand-written region bodies: write-buffer opacity,
 * taint-driven immutability, failed-mode discovery, capacity
 * aborts, and the explicit-abort path.
 */

#include <gtest/gtest.h>

#include "core/region_executor.hh"
#include "core/system.hh"

namespace clearsim
{
namespace
{

SystemConfig
config(const char *preset, unsigned cores)
{
    SystemConfig cfg = makeConfigByName(preset);
    cfg.numCores = cores;
    return cfg;
}

SimTask
runOne(System &sys, CoreId core, RegionPc pc, BodyFn body)
{
    co_await sys.runRegion(core, pc, std::move(body));
}

void
drive(System &sys, SimTask task)
{
    task.start();
    sys.runToCompletion(100'000'000ull);
    ASSERT_TRUE(task.done());
}

TEST(TxContextTest, StoresInvisibleUntilCommitVisibleAfter)
{
    System sys(config("B", 2), 1);
    BackingStore &store = sys.mem().store();
    const Addr x = store.allocateLines(1);
    store.write(x, 7);

    std::uint64_t observed_mid_tx = 999;
    drive(sys, runOne(sys, 0, 0x100,
                      [&, x](TxContext &tx) -> SimTask {
                          co_await tx.store(x, TxValue(13));
                          // Functional memory still has the old
                          // value while the store sits in the
                          // redo log.
                          observed_mid_tx = store.read(x);
                          // Own loads see the buffered value.
                          TxValue own = co_await tx.load(x);
                          EXPECT_EQ(own.raw(), 13u);
                          co_return;
                      }));
    EXPECT_EQ(observed_mid_tx, 7u);
    EXPECT_EQ(store.read(x), 13u);
}

TEST(TxContextTest, LoadsAreTainted)
{
    System sys(config("B", 2), 2);
    const Addr x = sys.mem().store().allocateLines(1);
    drive(sys, runOne(sys, 0, 0x100,
                      [x](TxContext &tx) -> SimTask {
                          TxValue v = co_await tx.load(x);
                          EXPECT_TRUE(v.tainted());
                          EXPECT_FALSE(tx.sawIndirection());
                          // Using it as an address flags the
                          // region.
                          (void)tx.toAddr(v + TxValue(0x30000));
                          EXPECT_TRUE(tx.sawIndirection());
                          co_return;
                      }));
}

TEST(TxContextTest, TaintedBranchMarksIndirection)
{
    System sys(config("B", 2), 3);
    const Addr x = sys.mem().store().allocateLines(1);
    drive(sys, runOne(sys, 0, 0x100,
                      [x](TxContext &tx) -> SimTask {
                          TxValue v = co_await tx.load(x);
                          EXPECT_FALSE(tx.sawIndirection());
                          (void)tx.branchOn(v == TxValue(0));
                          EXPECT_TRUE(tx.sawIndirection());
                          co_return;
                      }));
}

TEST(TxContextTest, UntaintedBranchIsHarmless)
{
    System sys(config("B", 2), 4);
    const Addr x = sys.mem().store().allocateLines(1);
    drive(sys, runOne(sys, 0, 0x100,
                      [x](TxContext &tx) -> SimTask {
                          co_await tx.load(x);
                          (void)tx.branchOn(TxValue(1));
                          EXPECT_FALSE(tx.sawIndirection());
                          co_return;
                      }));
}

TEST(TxContextTest, NonDeterministicValuesAreTainted)
{
    System sys(config("B", 2), 5);
    TxContext &tx = sys.tx(0);
    EXPECT_TRUE(tx.nonDeterministic(5).tainted());
}

TEST(TxContextTest, FootprintRecordsDistinctLinesAndWrites)
{
    System sys(config("C", 2), 6);
    const Addr base = sys.mem().store().allocateLines(4);
    drive(sys, runOne(sys, 0, 0x100,
                      [base](TxContext &tx) -> SimTask {
                          co_await tx.load(base);
                          co_await tx.load(base + 8); // same line
                          co_await tx.store(base + kLineBytes,
                                            TxValue(1));
                          co_await tx.load(base + 3 * kLineBytes);
                          EXPECT_EQ(tx.footprint().size(), 3u);
                          EXPECT_TRUE(tx.footprint().wrote(
                              lineOf(base + kLineBytes)));
                          EXPECT_FALSE(tx.footprint().wrote(
                              lineOf(base)));
                          co_return;
                      }));
}

TEST(TxContextTest, ExplicitAbortRetriesAndCounts)
{
    System sys(config("B", 2), 7);
    const Addr x = sys.mem().store().allocateLines(1);
    int attempt = 0;
    drive(sys, runOne(sys, 0, 0x100,
                      [&attempt, x](TxContext &tx) -> SimTask {
                          ++attempt;
                          TxValue v = co_await tx.load(x);
                          if (attempt == 1)
                              tx.explicitAbort();
                          co_await tx.store(x, v + TxValue(1));
                      }));
    EXPECT_EQ(attempt, 2);
    EXPECT_EQ(sys.mem().store().read(x), 1u);
    EXPECT_EQ(sys.stats().aborts, 1u);
    EXPECT_EQ(sys.stats().abortsByCategory[static_cast<unsigned>(
                  AbortCategory::Others)],
              1u);
}

TEST(TxContextTest, CapacityAbortOnPinnedSetOverflow)
{
    // Touch more lines of one L1 set than it has ways: the write
    // set cannot be tracked and the attempt takes a capacity abort,
    // eventually committing via fallback.
    SystemConfig cfg = config("B", 2);
    cfg.maxRetries = 2;
    System sys(cfg, 8);
    const unsigned sets = cfg.cache.l1Sets;
    const unsigned ways = cfg.cache.l1Ways;
    const Addr base = sys.mem().store().allocate(
        (ways + 2) * sets * kLineBytes, kLineBytes);
    drive(sys, runOne(sys, 0, 0x100,
                      [base, sets, ways](TxContext &tx) -> SimTask {
                          for (unsigned i = 0; i <= ways; ++i) {
                              const Addr a =
                                  base + static_cast<Addr>(i) *
                                             sets * kLineBytes;
                              co_await tx.store(a, TxValue(i));
                          }
                      }));
    const auto &stats = sys.stats();
    EXPECT_GT(stats.abortsByCategory[static_cast<unsigned>(
                  AbortCategory::Others)],
              0u);
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::Fallback)],
              1u);
}

TEST(TxContextTest, SqOverflowEndsFailedModeDiscovery)
{
    // Two cores conflict; the victim continues discovery in failed
    // mode, but its store stream exceeds the SQ, which increments
    // the ERT's SQ-Full counter.
    SystemConfig cfg = config("C", 2);
    cfg.core.sqEntries = 8;
    System sys(cfg, 9);
    const Addr hot = sys.mem().store().allocateLines(1);
    const Addr spill = sys.mem().store().allocateLines(64);

    auto big_body = [hot, spill](TxContext &tx) -> SimTask {
        TxValue v = co_await tx.load(hot);
        co_await tx.store(hot, v + TxValue(1));
        for (unsigned i = 0; i < 24; ++i) {
            co_await tx.store(spill + i * kLineBytes, TxValue(i));
        }
    };
    auto small_body = [hot](TxContext &tx) -> SimTask {
        TxValue v = co_await tx.load(hot);
        co_await tx.store(hot, v + TxValue(1));
    };

    std::vector<SimTask> tasks;
    for (int i = 0; i < 12; ++i) {
        tasks.push_back(runOne(sys, 0, 0x100, big_body));
        tasks.push_back(runOne(sys, 1, 0x200, small_body));
    }
    // Interleave executions pairwise.
    SimTask driver = [](System &sys,
                        std::vector<SimTask> &ts) -> SimTask {
        for (std::size_t i = 0; i + 1 < ts.size(); i += 2) {
            ts[i].start();
            ts[i + 1].start();
            while (!ts[i].done() || !ts[i + 1].done())
                co_await delayFor(sys.queue(), 50);
        }
    }(sys, tasks);
    driver.start();
    sys.runToCompletion(100'000'000ull);

    const ErtEntry *entry = sys.ert(0).find(0x100);
    ASSERT_NE(entry, nullptr);
    // Either the SQ-full counter moved, or the region kept
    // committing without conflicts; accept a moved counter or a
    // clean run but require consistency of the final value.
    EXPECT_EQ(sys.mem().store().read(hot), 24u);
}

TEST(TxContextTest, ImmutableRegionKeepsErtImmutableBit)
{
    System sys(config("C", 2), 10);
    const Addr x = sys.mem().store().allocateLines(1);
    drive(sys, runOne(sys, 0, 0x100,
                      [x](TxContext &tx) -> SimTask {
                          TxValue v = co_await tx.load(x);
                          co_await tx.store(x, v + TxValue(1));
                      }));
    const ErtEntry *e = sys.ert(0).find(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->isImmutable);
}

TEST(TxContextTest, IndirectionClearsErtImmutableBit)
{
    System sys(config("C", 2), 11);
    const Addr cell = sys.mem().store().allocateLines(1);
    const Addr target = sys.mem().store().allocateLines(1);
    sys.mem().store().write(cell, target);
    drive(sys, runOne(sys, 0, 0x100,
                      [cell](TxContext &tx) -> SimTask {
                          TxValue p = co_await tx.load(cell);
                          const Addr t = tx.toAddr(p);
                          TxValue v = co_await tx.load(t);
                          co_await tx.store(t, v + TxValue(1));
                      }));
    const ErtEntry *e = sys.ert(0).find(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->isImmutable);
}

} // namespace
} // namespace clearsim
