/** @file Unit tests for the fallback reader/writer lock. */

#include <gtest/gtest.h>

#include "htm/fallback_lock.hh"

namespace clearsim
{
namespace
{

class FakeTx : public TxParticipant
{
  public:
    AbortReason doomedWith = AbortReason::None;

    bool conflictable() const override { return true; }
    bool inPowerMode() const override { return false; }
    ExecMode execMode() const override
    {
        return ExecMode::Speculative;
    }
    void
    doomRemote(AbortReason reason, LineAddr) override
    {
        doomedWith = reason;
    }
};

TEST(FallbackLockTest, WriterExcludesWriter)
{
    FallbackLock lock(100);
    EXPECT_TRUE(lock.tryAcquireWrite(0));
    EXPECT_TRUE(lock.writerHeld());
    EXPECT_EQ(lock.writer(), 0);
    EXPECT_FALSE(lock.tryAcquireWrite(1));
    lock.releaseWrite(0);
    EXPECT_TRUE(lock.tryAcquireWrite(1));
}

TEST(FallbackLockTest, ReadersShare)
{
    FallbackLock lock(100);
    EXPECT_TRUE(lock.tryAcquireRead(0));
    EXPECT_TRUE(lock.tryAcquireRead(1));
    EXPECT_EQ(lock.readerCount(), 2u);
}

TEST(FallbackLockTest, WriterExcludesReadersAndViceVersa)
{
    FallbackLock lock(100);
    lock.tryAcquireRead(0);
    EXPECT_FALSE(lock.tryAcquireWrite(1));
    lock.releaseRead(0);
    EXPECT_TRUE(lock.tryAcquireWrite(1));
    EXPECT_FALSE(lock.tryAcquireRead(0));
}

TEST(FallbackLockTest, WriterAcquisitionDoomsSubscribers)
{
    FallbackLock lock(100);
    FakeTx a;
    FakeTx b;
    lock.subscribe(1, &a);
    lock.subscribe(2, &b);
    lock.tryAcquireWrite(0);
    EXPECT_EQ(a.doomedWith, AbortReason::OtherFallback);
    EXPECT_EQ(b.doomedWith, AbortReason::OtherFallback);
}

TEST(FallbackLockTest, UnsubscribedTxIsNotDoomed)
{
    FallbackLock lock(100);
    FakeTx a;
    lock.subscribe(1, &a);
    lock.unsubscribe(1);
    lock.tryAcquireWrite(0);
    EXPECT_EQ(a.doomedWith, AbortReason::None);
}

TEST(FallbackLockTest, OnReleaseFiresOnWriteRelease)
{
    FallbackLock lock(100);
    lock.tryAcquireWrite(0);
    int fired = 0;
    lock.onRelease([&] { ++fired; });
    EXPECT_EQ(fired, 0);
    lock.releaseWrite(0);
    EXPECT_EQ(fired, 1);
}

TEST(FallbackLockTest, OnReleaseFiresWhenReadersDrain)
{
    FallbackLock lock(100);
    lock.tryAcquireRead(0);
    lock.tryAcquireRead(1);
    int fired = 0;
    lock.onRelease([&] { ++fired; });
    lock.releaseRead(0);
    EXPECT_EQ(fired, 0);
    lock.releaseRead(1);
    EXPECT_EQ(fired, 1);
}

TEST(FallbackLockTest, OnReleaseOfFreeLockFiresImmediately)
{
    FallbackLock lock(100);
    int fired = 0;
    lock.onRelease([&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(FallbackLockTest, FailedWriteAttemptDoesNotDoom)
{
    FallbackLock lock(100);
    FakeTx a;
    lock.tryAcquireRead(3);
    lock.subscribe(1, &a);
    EXPECT_FALSE(lock.tryAcquireWrite(0));
    EXPECT_EQ(a.doomedWith, AbortReason::None);
}

TEST(FallbackLockTest, CountsWriterAcquisitions)
{
    FallbackLock lock(100);
    lock.tryAcquireWrite(0);
    lock.releaseWrite(0);
    lock.tryAcquireWrite(1);
    lock.releaseWrite(1);
    EXPECT_EQ(lock.writerAcquisitions(), 2u);
}

TEST(FallbackLockTest, LockLine)
{
    FallbackLock lock(123);
    EXPECT_EQ(lock.line(), 123u);
}

} // namespace
} // namespace clearsim
