/** @file Unit tests for footprint recording. */

#include <gtest/gtest.h>

#include "htm/footprint.hh"

namespace clearsim
{
namespace
{

TEST(FootprintTest, RecordsDistinctLines)
{
    Footprint fp(8);
    fp.record(1, false);
    fp.record(2, true);
    fp.record(1, false); // duplicate
    EXPECT_EQ(fp.size(), 2u);
    EXPECT_TRUE(fp.contains(1));
    EXPECT_TRUE(fp.contains(2));
    EXPECT_FALSE(fp.contains(3));
}

TEST(FootprintTest, WriteFlagSticks)
{
    Footprint fp(8);
    fp.record(1, false);
    EXPECT_FALSE(fp.wrote(1));
    fp.record(1, true);
    EXPECT_TRUE(fp.wrote(1));
    fp.record(1, false); // a later read does not clear it
    EXPECT_TRUE(fp.wrote(1));
}

TEST(FootprintTest, OverflowBeyondCapacity)
{
    Footprint fp(2);
    EXPECT_TRUE(fp.record(1, false));
    EXPECT_TRUE(fp.record(2, false));
    EXPECT_FALSE(fp.record(3, false));
    EXPECT_TRUE(fp.overflowed());
    EXPECT_EQ(fp.size(), 2u);
    // Duplicates of recorded lines still succeed.
    EXPECT_TRUE(fp.record(1, true));
}

TEST(FootprintTest, SameLinesIgnoresWriteFlags)
{
    Footprint a(8);
    Footprint b(8);
    a.record(1, true);
    a.record(2, false);
    b.record(2, true);
    b.record(1, false);
    EXPECT_TRUE(a.sameLines(b));
    EXPECT_TRUE(b.sameLines(a));
}

TEST(FootprintTest, DifferentSetsAreNotSame)
{
    Footprint a(8);
    Footprint b(8);
    a.record(1, false);
    b.record(2, false);
    EXPECT_FALSE(a.sameLines(b));

    b.record(1, false);
    EXPECT_FALSE(a.sameLines(b)); // size differs
}

TEST(FootprintTest, OverflowedIsNeverSame)
{
    Footprint a(1);
    Footprint b(8);
    a.record(1, false);
    a.record(2, false); // overflows
    b.record(1, false);
    EXPECT_FALSE(a.sameLines(b));
    EXPECT_FALSE(b.sameLines(a));
}

TEST(FootprintTest, ClearResets)
{
    Footprint fp(2);
    fp.record(1, true);
    fp.record(2, true);
    fp.record(3, true);
    fp.clear();
    EXPECT_EQ(fp.size(), 0u);
    EXPECT_FALSE(fp.overflowed());
    EXPECT_TRUE(fp.record(5, false));
}

TEST(FootprintTest, EntriesPreserveInsertionOrder)
{
    Footprint fp(8);
    fp.record(7, false);
    fp.record(3, true);
    fp.record(9, false);
    ASSERT_EQ(fp.entries().size(), 3u);
    EXPECT_EQ(fp.entries()[0].line, 7u);
    EXPECT_EQ(fp.entries()[1].line, 3u);
    EXPECT_EQ(fp.entries()[2].line, 9u);
    EXPECT_TRUE(fp.entries()[1].wrote);
}

} // namespace
} // namespace clearsim
