/** @file Unit tests for the PowerTM token. */

#include <gtest/gtest.h>

#include "htm/power_token.hh"

namespace clearsim
{
namespace
{

TEST(PowerTokenTest, SingleHolder)
{
    PowerToken token;
    EXPECT_EQ(token.holder(), kNoCore);
    EXPECT_TRUE(token.tryAcquire(1));
    EXPECT_TRUE(token.isHolder(1));
    EXPECT_FALSE(token.tryAcquire(2));
    EXPECT_FALSE(token.isHolder(2));
}

TEST(PowerTokenTest, ReacquireByHolderSucceeds)
{
    PowerToken token;
    token.tryAcquire(1);
    EXPECT_TRUE(token.tryAcquire(1));
    EXPECT_EQ(token.acquisitions(), 1u);
}

TEST(PowerTokenTest, ReleaseFreesToken)
{
    PowerToken token;
    token.tryAcquire(1);
    token.release(1);
    EXPECT_EQ(token.holder(), kNoCore);
    EXPECT_TRUE(token.tryAcquire(2));
}

TEST(PowerTokenTest, ReleaseByNonHolderIsIgnored)
{
    PowerToken token;
    token.tryAcquire(1);
    token.release(2);
    EXPECT_TRUE(token.isHolder(1));
}

TEST(PowerTokenTest, ResetDropsHolder)
{
    PowerToken token;
    token.tryAcquire(1);
    token.reset();
    EXPECT_EQ(token.holder(), kNoCore);
}

} // namespace
} // namespace clearsim
