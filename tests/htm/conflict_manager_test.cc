/** @file Unit tests for conflict arbitration (requester-wins,
 *  PowerTM priority, and the Section 5.2 CLEAR/PowerTM nacks). */

#include <gtest/gtest.h>

#include "htm/conflict_manager.hh"
#include "htm/power_token.hh"

namespace clearsim
{
namespace
{

/** Controllable fake transaction. */
class FakeTx : public TxParticipant
{
  public:
    bool conflictable_ = true;
    bool power_ = false;
    ExecMode mode_ = ExecMode::Speculative;
    AbortReason doomedWith = AbortReason::None;
    LineAddr doomedLine = 0;

    bool conflictable() const override { return conflictable_; }
    bool inPowerMode() const override { return power_; }
    ExecMode execMode() const override { return mode_; }

    void
    doomRemote(AbortReason reason, LineAddr line) override
    {
        doomedWith = reason;
        doomedLine = line;
    }
};

class ConflictManagerTest : public ::testing::Test
{
  protected:
    void
    build(HtmPolicy policy, bool clear_enabled)
    {
        cfg_ = makeBaselineConfig();
        cfg_.numCores = 4;
        cfg_.htmPolicy = policy;
        cfg_.clear.enabled = clear_enabled;
        cm_ = std::make_unique<ConflictManager>(cfg_, power_);
        for (unsigned c = 0; c < 4; ++c)
            cm_->registerParticipant(static_cast<CoreId>(c),
                                     &tx_[c]);
    }

    SystemConfig cfg_;
    PowerToken power_;
    std::unique_ptr<ConflictManager> cm_;
    FakeTx tx_[4];
};

TEST_F(ConflictManagerTest, NoConflictOnFreeLine)
{
    build(HtmPolicy::RequesterWins, false);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, ReadersDoNotConflictWithReaders)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addRead(1, 10);
    const auto out =
        cm_->arbitrate(0, 10, false, RequesterClass::Speculative);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, WriteDoomsReaders)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addRead(1, 10);
    cm_->addRead(2, 10);
    cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::MemoryConflict);
    EXPECT_EQ(tx_[1].doomedLine, 10u);
    EXPECT_EQ(tx_[2].doomedWith, AbortReason::MemoryConflict);
}

TEST_F(ConflictManagerTest, ReadDoomsWriter)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(1, 10);
    cm_->arbitrate(0, 10, false, RequesterClass::Speculative);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::MemoryConflict);
}

TEST_F(ConflictManagerTest, OwnSetsDoNotSelfConflict)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(0, 10);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[0].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, NonConflictableHoldersAreSkipped)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(1, 10);
    tx_[1].conflictable_ = false; // already doomed / failed mode
    cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, FailedDiscoveryNeverHarms)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(1, 10);
    const auto out = cm_->arbitrate(0, 10, true,
                                    RequesterClass::FailedDiscovery);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, PowerHolderNacksRequester)
{
    build(HtmPolicy::PowerTm, false);
    cm_->addWrite(1, 10);
    tx_[1].power_ = true;
    power_.tryAcquire(1);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_TRUE(out.abortSelf);
    EXPECT_EQ(out.selfReason, AbortReason::Nacked);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, PowerRequesterWinsAgainstNormal)
{
    build(HtmPolicy::PowerTm, false);
    cm_->addWrite(1, 10);
    power_.tryAcquire(0);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::MemoryConflict);
}

TEST_F(ConflictManagerTest, PowerPriorityOnlyUnderPowerTm)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(1, 10);
    tx_[1].power_ = true;
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::MemoryConflict);
}

TEST_F(ConflictManagerTest, Section52SclHolderNacksPowerRequester)
{
    build(HtmPolicy::PowerTm, true);
    cm_->addRead(1, 10);
    tx_[1].mode_ = ExecMode::SCl;
    power_.tryAcquire(0);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_TRUE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, Section52PowerHolderNacksSclLocker)
{
    build(HtmPolicy::PowerTm, true);
    cm_->addWrite(1, 10);
    tx_[1].power_ = true;
    power_.tryAcquire(1);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::SclLocking);
    EXPECT_TRUE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, NsClLockerAlwaysWins)
{
    build(HtmPolicy::PowerTm, true);
    cm_->addWrite(1, 10);
    tx_[1].power_ = true;
    power_.tryAcquire(1);
    const auto out =
        cm_->arbitrate(0, 10, true, RequesterClass::NsClLocking);
    EXPECT_FALSE(out.abortSelf);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::MemoryConflict);
}

TEST_F(ConflictManagerTest, RemoveStopsConflicts)
{
    build(HtmPolicy::RequesterWins, false);
    cm_->addWrite(1, 10);
    cm_->remove(1, 10);
    cm_->arbitrate(0, 10, true, RequesterClass::Speculative);
    EXPECT_EQ(tx_[1].doomedWith, AbortReason::None);
}

TEST_F(ConflictManagerTest, HasRemoteWriter)
{
    build(HtmPolicy::RequesterWins, false);
    EXPECT_FALSE(cm_->hasRemoteWriter(0, 10));
    cm_->addWrite(1, 10);
    EXPECT_TRUE(cm_->hasRemoteWriter(0, 10));
    EXPECT_FALSE(cm_->hasRemoteWriter(1, 10));
}

} // namespace
} // namespace clearsim
