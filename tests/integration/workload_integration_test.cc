/**
 * @file
 * Integration tests: every workload runs to completion under every
 * configuration, all invariants hold, and the machine ends clean
 * (no held locks, no fallback holders, no power token).
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

struct Case
{
    std::string workload;
    std::string config;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string name =
        info.param.workload + "_" + info.param.config;
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

class WorkloadIntegration : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadIntegration, RunsCleanAndConsistent)
{
    const Case &param = GetParam();
    SystemConfig cfg = makeConfigByName(param.config);
    WorkloadParams params;
    params.opsPerThread = 10;
    params.seed = 99;

    System sys(cfg, params.seed);
    auto workload = makeWorkload(param.workload, params);
    const Cycle cycles = runWorkloadThreads(sys, *workload);
    EXPECT_GT(cycles, 0u);

    // Workload-specific invariants (atomicity end to end).
    const auto issues = workload->verify(sys);
    for (const std::string &issue : issues)
        ADD_FAILURE() << issue;

    // Machine-level cleanliness.
    const HtmStats &stats = sys.stats();
    EXPECT_GT(stats.commits, 0u);
    std::uint64_t by_mode = 0;
    for (unsigned m = 0; m < kNumExecModes; ++m)
        by_mode += stats.commitsByMode[m];
    EXPECT_EQ(by_mode, stats.commits);
    EXPECT_EQ(stats.commitsByRetries.total() +
                  stats.fallbackCommitRetries.total(),
              stats.commits);

    for (unsigned c = 0; c < cfg.numCores; ++c)
        EXPECT_EQ(sys.mem().locks().heldCount(
                      static_cast<CoreId>(c)),
                  0u);
    EXPECT_FALSE(sys.fallback().writerHeld());
    EXPECT_EQ(sys.fallback().readerCount(), 0u);
    EXPECT_EQ(sys.power().holder(), kNoCore);

    // Baseline configurations must never use CLEAR machinery.
    if (param.config == "B" || param.config == "P") {
        EXPECT_EQ(stats.nsClAttempts, 0u);
        EXPECT_EQ(stats.sClAttempts, 0u);
        EXPECT_EQ(stats.cachelineLocksAcquired, 0u);
    }
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const std::string &w : workloadNames()) {
        for (const char *c : {"B", "P", "C", "W"})
            cases.push_back(Case{w, c});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllConfigs,
                         WorkloadIntegration,
                         ::testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace clearsim
