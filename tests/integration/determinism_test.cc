/**
 * @file
 * Integration tests: bit-exact reproducibility. Two runs with the
 * same seed must produce identical cycle counts and statistics;
 * different seeds should diverge.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

using Fingerprint =
    std::tuple<Cycle, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t>;

Fingerprint
runFingerprint(const std::string &workload, const char *config,
               std::uint64_t seed)
{
    SystemConfig cfg = makeConfigByName(config);
    WorkloadParams params;
    params.opsPerThread = 8;
    params.seed = seed;
    const RunResult r = runOnce(cfg, workload, params);
    return {r.cycles, r.htm.commits, r.htm.aborts,
            r.htm.committedUops, r.htm.abortedUops};
}

class Determinism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Determinism, SameSeedSameRun)
{
    for (const char *config : {"B", "W"}) {
        EXPECT_EQ(runFingerprint(GetParam(), config, 5),
                  runFingerprint(GetParam(), config, 5))
            << "config " << config;
    }
}

TEST_P(Determinism, DifferentSeedsDiverge)
{
    EXPECT_NE(std::get<0>(runFingerprint(GetParam(), "B", 5)),
              std::get<0>(runFingerprint(GetParam(), "B", 6)));
}

INSTANTIATE_TEST_SUITE_P(
    SampledWorkloads, Determinism,
    ::testing::Values("arrayswap", "bitcoin", "bst", "hashmap",
                      "queue", "kmeans-h", "vacation-l"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace clearsim
