/**
 * @file
 * Integration tests of the Table 1 characterization machinery:
 * running each workload in profile mode must reproduce the paper's
 * mutability classes for the rows where the dynamic and the static
 * classification coincide.
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

struct Classified
{
    unsigned executed = 0;
    unsigned immutable = 0;
    unsigned likely = 0;
    unsigned mutable_ = 0;
};

Classified
classify(const std::string &workload, std::uint64_t seed)
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.profileMode = true;
    WorkloadParams params;
    params.opsPerThread = 24;
    params.seed = seed;
    const RunResult run = runOnce(cfg, workload, params);

    Classified result;
    for (const auto &[pc, profile] : run.htm.regions) {
        (void)pc;
        if (profile.invocations == 0)
            continue;
        ++result.executed;
        if (!profile.sawIndirection)
            ++result.immutable;
        else if (!profile.footprintChanged)
            ++result.likely;
        else
            ++result.mutable_;
    }
    return result;
}

TEST(CharacterizationTest, ArrayswapIsFullyImmutable)
{
    const Classified c = classify("arrayswap", 7);
    EXPECT_EQ(c.executed, 2u);
    EXPECT_EQ(c.immutable, 2u);
}

TEST(CharacterizationTest, MwobjectIsImmutable)
{
    const Classified c = classify("mwobject", 7);
    EXPECT_EQ(c.executed, 1u);
    EXPECT_EQ(c.immutable, 1u);
}

TEST(CharacterizationTest, BitcoinIsLikelyImmutable)
{
    // Listing 2: one indirection over a pointer nobody writes.
    const Classified c = classify("bitcoin", 7);
    EXPECT_EQ(c.executed, 1u);
    EXPECT_EQ(c.likely, 1u);
}

TEST(CharacterizationTest, GenomeIsFullyMutable)
{
    const Classified c = classify("genome", 7);
    EXPECT_EQ(c.executed, 5u);
    EXPECT_EQ(c.immutable, 0u);
    EXPECT_GE(c.mutable_, 4u);
}

TEST(CharacterizationTest, KmeansMatchesPaperExactly)
{
    for (const char *name : {"kmeans-h", "kmeans-l"}) {
        const Classified c = classify(name, 7);
        EXPECT_EQ(c.executed, 3u) << name;
        EXPECT_EQ(c.immutable, 1u) << name;
        EXPECT_EQ(c.likely, 2u) << name;
    }
}

TEST(CharacterizationTest, Ssca2MatchesPaperExactly)
{
    const Classified c = classify("ssca2", 7);
    EXPECT_EQ(c.executed, 3u);
    EXPECT_EQ(c.immutable, 2u);
    EXPECT_EQ(c.likely, 1u);
}

TEST(CharacterizationTest, LabyrinthHasNoImmutableRegions)
{
    const Classified c = classify("labyrinth", 7);
    EXPECT_EQ(c.executed, 3u);
    EXPECT_EQ(c.immutable, 0u);
}

TEST(CharacterizationTest, SortedListHasTheStatsRegionImmutable)
{
    const Classified c = classify("sorted-list", 7);
    EXPECT_EQ(c.executed, 3u);
    EXPECT_EQ(c.immutable, 1u);
    EXPECT_GE(c.mutable_ + c.likely, 2u);
}

TEST(CharacterizationTest, EveryWorkloadExecutesAllItsRegions)
{
    WorkloadParams params;
    for (const std::string &name : workloadNames()) {
        const Classified c = classify(name, 13);
        const unsigned declared =
            makeWorkload(name, params)->numRegions();
        EXPECT_EQ(c.executed, declared) << name;
    }
}

} // namespace
} // namespace clearsim
