/**
 * @file
 * Unit tests of the workload framework and of each workload's
 * structure: registry completeness, Table 1 region counts,
 * single-thread correctness (no concurrency, every op must commit
 * first-try), and init-time invariants.
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

TEST(WorkloadRegistryTest, NineteenWorkloadsInPaperOrder)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 19u);
    EXPECT_EQ(names.front(), "arrayswap");
    EXPECT_EQ(names[8], "sorted-list");
    EXPECT_EQ(names[9], "bayes");
    EXPECT_EQ(names.back(), "yada");
}

TEST(WorkloadRegistryTest, EveryNameConstructs)
{
    WorkloadParams params;
    for (const std::string &name : workloadNames()) {
        auto w = makeWorkload(name, params);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
    }
}

TEST(WorkloadRegistryTest, RegionCountsMatchTable1)
{
    const std::pair<const char *, unsigned> expected[] = {
        {"arrayswap", 2}, {"bitcoin", 1},  {"bst", 3},
        {"deque", 2},     {"hashmap", 3},  {"mwobject", 1},
        {"queue", 2},     {"stack", 2},    {"sorted-list", 3},
        {"bayes", 14},    {"genome", 5},   {"intruder", 3},
        {"kmeans-h", 3},  {"kmeans-l", 3}, {"labyrinth", 3},
        {"ssca2", 3},     {"vacation-h", 3}, {"vacation-l", 3},
        {"yada", 6},
    };
    WorkloadParams params;
    for (const auto &[name, regions] : expected) {
        EXPECT_EQ(makeWorkload(name, params)->numRegions(), regions)
            << name;
    }
}

class SingleThreaded
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SingleThreaded, EveryOpCommitsFirstTryAndVerifies)
{
    // With one thread there is no contention: no aborts, no
    // fallback, and all invariants must hold trivially.
    WorkloadParams params;
    params.threads = 1;
    params.opsPerThread = 30;
    params.seed = 3;
    SystemConfig cfg = makeBaselineConfig();
    System sys(cfg, params.seed);
    auto workload = makeWorkload(GetParam(), params);
    runWorkloadThreads(sys, *workload);

    for (const std::string &issue : workload->verify(sys))
        ADD_FAILURE() << issue;
    EXPECT_EQ(sys.stats().aborts, 0u);
    EXPECT_EQ(sys.stats().commitsByMode[static_cast<unsigned>(
                  ExecMode::Fallback)],
              0u);
    EXPECT_EQ(sys.stats().commits,
              sys.stats().commitsByRetries.count(0));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SingleThreaded,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(WorkloadFrameworkTest, VerifyDetectsCorruption)
{
    // Sanity of the checker itself: corrupt the state after a
    // clean run and verify() must complain.
    WorkloadParams params;
    params.threads = 1;
    params.opsPerThread = 5;
    params.seed = 4;
    System sys(makeBaselineConfig(), params.seed);
    auto workload = makeWorkload("mwobject", params);
    runWorkloadThreads(sys, *workload);
    ASSERT_TRUE(workload->verify(sys).empty());

    // mwobject's counters live in the first workload allocation
    // after the fallback lock line; scribble over simulated memory
    // broadly to hit them.
    for (Addr a = 0x10000; a < 0x10000 + 4096; a += 8)
        sys.mem().store().write(a, 0xbadbeef);
    EXPECT_FALSE(workload->verify(sys).empty());
}

TEST(WorkloadFrameworkTest, ScaleParameterGrowsStructures)
{
    WorkloadParams small;
    small.threads = 1;
    small.opsPerThread = 4;
    small.scale = 1;
    WorkloadParams big = small;
    big.scale = 4;

    System sys_small(makeBaselineConfig(), 1);
    System sys_big(makeBaselineConfig(), 1);
    auto w_small = makeWorkload("arrayswap", small);
    auto w_big = makeWorkload("arrayswap", big);
    runWorkloadThreads(sys_small, *w_small);
    runWorkloadThreads(sys_big, *w_big);
    // A larger array means more simulated memory allocated.
    EXPECT_GT(sys_big.mem().store().brk(),
              sys_small.mem().store().brk());
}

class ThinkTimeProbe : public Workload
{
  public:
    using Workload::Workload;
    const char *name() const override { return "probe"; }
    unsigned numRegions() const override { return 0; }
    void init(System &) override {}
    SimTask thread(System &, CoreId) override { co_return; }
    std::vector<std::string> verify(System &) const override
    {
        return {};
    }

    static Cycle probe(System &sys, Rng &rng)
    {
        return thinkTime(sys, rng);
    }
};

TEST(WorkloadFrameworkTest, ZeroThinkTimeMeanYieldsZeroDelay)
{
    // thinkTimeMean == 0 must short-circuit: reaching
    // Rng::nextBelow(0) would be a modulo-by-zero.
    SystemConfig cfg = makeBaselineConfig();
    cfg.timing.thinkTimeMean = 0;
    System sys(cfg, 1);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ThinkTimeProbe::probe(sys, rng), 0u);
}

TEST(WorkloadFrameworkTest, ZeroThinkTimeRunCompletes)
{
    // End-to-end: a full contended run with no think time at all.
    WorkloadParams params;
    params.threads = 4;
    params.opsPerThread = 8;
    params.seed = 6;
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 4;
    cfg.timing.thinkTimeMean = 0;
    System sys(cfg, params.seed);
    auto workload = makeWorkload("bitcoin", params);
    runWorkloadThreads(sys, *workload);
    EXPECT_TRUE(workload->verify(sys).empty());
    EXPECT_EQ(sys.stats().commits, 4u * 8u);
}

TEST(WorkloadFrameworkTest, ThreadCountCappedByCores)
{
    WorkloadParams params;
    params.threads = 64; // more than the 32 cores
    params.opsPerThread = 2;
    SystemConfig cfg = makeBaselineConfig();
    System sys(cfg, 5);
    auto workload = makeWorkload("mwobject", params);
    runWorkloadThreads(sys, *workload);
    // Only numCores threads actually ran.
    EXPECT_EQ(sys.stats().commits,
              static_cast<std::uint64_t>(cfg.numCores) *
                  params.opsPerThread);
}

} // namespace
} // namespace clearsim
