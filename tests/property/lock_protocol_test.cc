/**
 * @file
 * Property/stress tests of the cacheline-locking protocol: many
 * cores repeatedly executing S-CL/NS-CL-convertible regions whose
 * footprints overlap pairwise and collide in directory sets (so
 * group/set locking is exercised), checked for progress (no
 * deadlock: every invocation commits) and atomicity.
 *
 * This is the Figure 5 / Figure 6 scenario space: crossing lock
 * orders, nack-able loads, blocked directory entries — the lex
 * order, set locks and NACK/retry responses must let every region
 * finish.
 */

#include <gtest/gtest.h>

#include "core/region_executor.hh"
#include "core/system.hh"

namespace clearsim
{
namespace
{

/** Read-modify-write a fixed set of lines (immutable region). */
SimTask
multiLineBody(TxContext &tx, Addr a0, Addr a1, Addr a2, Addr a3,
              unsigned count)
{
    const Addr addrs[4] = {a0, a1, a2, a3};
    for (unsigned i = 0; i < count; ++i) {
        TxValue v = co_await tx.load(addrs[i]);
        co_await tx.store(addrs[i], v + TxValue(1));
    }
}

struct Job
{
    std::uint64_t addrs[4];
    unsigned count;
    RegionPc pc;
};

SimTask
jobWorker(System &sys, CoreId core, std::vector<Job> jobs)
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        // Copy the address array into the lambda (trivially
        // copyable) so the body can be re-invoked on retries.
        std::uint64_t a0 = job.addrs[0];
        std::uint64_t a1 = job.addrs[1];
        std::uint64_t a2 = job.addrs[2];
        std::uint64_t a3 = job.addrs[3];
        const unsigned count = job.count;
        co_await sys.runRegion(
            core, job.pc, [a0, a1, a2, a3, count](TxContext &tx) {
                return multiLineBody(tx, a0, a1, a2, a3, count);
            });
        co_await delayFor(sys.queue(), 11 + core * 3);
    }
}

class LockProtocolStress
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{
};

TEST_P(LockProtocolStress, AllCommitNoDeadlockSumExact)
{
    const auto [seed, cores] = GetParam();
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = cores;
    // Tiny directory so footprints collide in directory sets and
    // the group/set-locking slow path runs constantly.
    cfg.cache.dirSets = 8;
    System sys(cfg, seed);

    // A small pool of lines shared by everyone: crossing lock
    // orders guaranteed.
    constexpr unsigned kPool = 12;
    const Addr base = sys.mem().store().allocateLines(kPool);
    Rng rng(seed * 7919 + 17);

    std::uint64_t expected_increments = 0;
    std::vector<SimTask> workers;
    for (unsigned c = 0; c < cores; ++c) {
        std::vector<Job> jobs;
        for (int j = 0; j < 18; ++j) {
            Job job{};
            job.count = 2 + static_cast<unsigned>(rng.nextBelow(3));
            job.pc = 0x100 + 0x40 * (j % 3);
            // Distinct lines per job.
            std::uint64_t picks[4] = {0, 0, 0, 0};
            unsigned got = 0;
            while (got < job.count) {
                const std::uint64_t idx = rng.nextBelow(kPool);
                bool dup = false;
                for (unsigned k = 0; k < got; ++k)
                    dup |= picks[k] == idx;
                if (dup)
                    continue;
                picks[got] = idx;
                job.addrs[got] = base + idx * kLineBytes;
                ++got;
            }
            expected_increments += job.count;
            jobs.push_back(job);
        }
        workers.push_back(
            jobWorker(sys, static_cast<CoreId>(c), std::move(jobs)));
    }
    for (auto &w : workers)
        w.start();

    // If the protocol deadlocks the queue drains with undone tasks
    // (caught below) or we hit the cycle ceiling (fatal).
    sys.runToCompletion(2'000'000'000ull);
    for (auto &w : workers)
        ASSERT_TRUE(w.done()) << "worker deadlocked";

    std::uint64_t total = 0;
    for (unsigned l = 0; l < kPool; ++l)
        total += sys.mem().store().read(base + l * kLineBytes);
    EXPECT_EQ(total, expected_increments);

    // Clean shutdown: no lock leaked.
    for (unsigned c = 0; c < cores; ++c)
        EXPECT_EQ(sys.mem().locks().heldCount(
                      static_cast<CoreId>(c)),
                  0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LockProtocolStress,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(4u, 8u, 16u)),
    [](const auto &info) {
        return "seed" +
               std::to_string(std::get<0>(info.param)) + "_cores" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace clearsim
