/**
 * @file
 * Property tests: atomicity invariants across the whole parameter
 * space (workload x config x seed x retry limit). Every workload
 * embeds conservation invariants that only hold if every committed
 * atomic region executed atomically — under speculative, S-CL,
 * NS-CL and fallback modes alike — so these sweeps are an
 * end-to-end serializability check of the protocol stack.
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

struct PropertyCase
{
    std::string workload;
    std::string config;
    std::uint64_t seed;
    unsigned retries;
};

std::string
caseName(const ::testing::TestParamInfo<PropertyCase> &info)
{
    std::string name = info.param.workload + "_" +
                       info.param.config + "_s" +
                       std::to_string(info.param.seed) + "_r" +
                       std::to_string(info.param.retries);
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

class AtomicityProperty
    : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(AtomicityProperty, InvariantsHold)
{
    const PropertyCase &param = GetParam();
    SystemConfig cfg = makeConfigByName(param.config);
    cfg.maxRetries = param.retries;
    WorkloadParams params;
    params.opsPerThread = 12;
    params.seed = param.seed;

    System sys(cfg, params.seed);
    auto workload = makeWorkload(param.workload, params);
    runWorkloadThreads(sys, *workload);
    for (const std::string &issue : workload->verify(sys))
        ADD_FAILURE() << param.config << "/r" << param.retries
                      << ": " << issue;
}

std::vector<PropertyCase>
propertyCases()
{
    // High-contention, structurally diverse workloads stress the
    // protocol hardest; sweep them across configs, seeds and retry
    // limits (including the degenerate straight-to-fallback 0).
    const std::vector<std::string> workloads = {
        "mwobject", "stack",    "queue",     "bst",
        "hashmap",  "bitcoin",  "sorted-list", "deque",
        "kmeans-h", "intruder", "labyrinth"};
    std::vector<PropertyCase> cases;
    for (const std::string &w : workloads) {
        for (const char *c : {"B", "P", "C", "W"}) {
            for (std::uint64_t seed : {101ull, 202ull}) {
                for (unsigned retries : {0u, 1u, 6u}) {
                    cases.push_back(
                        PropertyCase{w, c, seed, retries});
                }
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtomicityProperty,
                         ::testing::ValuesIn(propertyCases()),
                         caseName);

} // namespace
} // namespace clearsim
