/**
 * @file
 * Property suite for the adaptive preset "A".
 *
 * Three contracts:
 *  - A region the analyzer proves CAPACITY-DOOMED never enters
 *    speculation under "A": its first attempt is already the
 *    fallback path.
 *  - A workload whose regions are all ELIGIBLE runs cycle-identical
 *    under "A" and under the static "C": adaptivity is free when
 *    there is nothing to adapt.
 *  - Under "A" crossed with every canned fault plan and several
 *    seeds, the InvariantChecker's single-retry bound holds, and
 *    any violation replays byte-identically from its repro string.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/analyze.hh"
#include "core/system.hh"
#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"
#include "policy/region_policy.hh"

namespace clearsim
{
namespace
{

/** The verdict-landscape params (bayes has CAPACITY-DOOMED here). */
WorkloadParams
landscapeParams()
{
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 8;
    params.seed = 11;
    return params;
}

TEST(AdaptivePolicyProperty, CapacityDoomedNeverEntersSpeculation)
{
    const WorkloadParams params = landscapeParams();
    for (const char *workload : {"bayes", "labyrinth", "yada"}) {
        SCOPED_TRACE(workload);
        const SystemConfig cfg = makeConfigFromSpec("A");
        const RegionPolicyTable table =
            buildRegionPolicy(cfg, workload, params);

        std::set<RegionPc> doomed;
        for (const auto &[pc, decision] : table.decisions())
            if (decision.verdict == RegionVerdict::CapacityDoomed)
                doomed.insert(pc);
        // The property is vacuous without doomed regions; these
        // workloads are chosen because they have them at the
        // landscape params.
        ASSERT_FALSE(doomed.empty());

        System sys(cfg, params.seed);
        sys.setRegionPolicy(&table);
        unsigned speculative_attempts = 0;
        unsigned fallback_attempts = 0;
        sys.setTraceSink([&](const TraceEvent &e) {
            if (e.kind != TraceKind::AttemptBegin ||
                !doomed.count(e.pc))
                return;
            if (e.mode == ExecMode::Fallback)
                ++fallback_attempts;
            else
                ++speculative_attempts;
        });
        auto w = makeWorkload(workload, params);
        runWorkloadThreads(sys, *w);

        // Every invocation of a doomed region went straight to the
        // fallback path; not one speculative (or cacheline-locked)
        // attempt was wasted on a region that cannot fit.
        EXPECT_EQ(0u, speculative_attempts);
        EXPECT_GT(fallback_attempts, 0u);
    }
}

TEST(AdaptivePolicyProperty, AllEligibleWorkloadMatchesClearExactly)
{
    const WorkloadParams params = landscapeParams();
    const SystemConfig adaptive = makeConfigFromSpec("A");
    const SystemConfig clear = makeConfigFromSpec("C");

    for (const char *workload : {"arrayswap", "mwobject"}) {
        SCOPED_TRACE(workload);
        const RegionPolicyTable table =
            buildRegionPolicy(adaptive, workload, params);
        ASSERT_FALSE(table.empty());
        for (const auto &[pc, decision] : table.decisions())
            ASSERT_EQ(RegionVerdict::Eligible, decision.verdict)
                << "0x" << std::hex << pc;

        // Nothing to adapt: every region maps to full CLEAR, so the
        // measured run must be cycle-identical to static "C".
        const RunResult a = runOnce(adaptive, workload, params);
        const RunResult c = runOnce(clear, workload, params);
        EXPECT_EQ(c.cycles, a.cycles);
        EXPECT_EQ(c.htm.commits, a.htm.commits);
        EXPECT_EQ(c.htm.aborts, a.htm.aborts);
        EXPECT_EQ(c.htm.commitsByMode, a.htm.commitsByMode);
        EXPECT_EQ(c.energy.total(), a.energy.total());
    }
}

/** Replay a violation from its repro string; return the what(). */
std::string
replayFromRepro(const std::string &what)
{
    const std::size_t begin = what.find("repro{");
    EXPECT_NE(begin, std::string::npos) << what;
    if (begin == std::string::npos)
        return {};
    const std::string repro =
        what.substr(begin, what.find('}', begin) - begin + 1);

    ReproSpec spec;
    std::string error;
    EXPECT_TRUE(parseReproString(repro, spec, &error)) << error;
    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = spec.seed;
    try {
        runOnce(makeConfigFromSpec(spec.config), spec.workload,
                params);
    } catch (const InvariantViolationError &err) {
        return err.what();
    }
    ADD_FAILURE() << "replay of " << repro << " did not violate";
    return {};
}

TEST(AdaptivePolicyProperty, InvariantsHoldUnderEveryFaultPlan)
{
    const char *plans[] = {"faults-nack-storm",
                           "faults-delay-jitter",
                           "faults-forced-abort"};
    const char *workloads[] = {"mwobject", "bayes"};
    for (const char *plan : plans) {
        for (std::uint64_t fault_seed : {1, 17}) {
            const std::string spec =
                std::string("A+") + plan +
                ":fault.seed=" + std::to_string(fault_seed);
            const SystemConfig cfg = makeConfigFromSpec(spec);
            for (const char *workload : workloads) {
                SCOPED_TRACE(spec + " / " + workload);
                try {
                    const RunResult run =
                        runOnce(cfg, workload, landscapeParams());
                    // Committed: the single-retry bound holds per
                    // region even though budgets now vary by
                    // verdict — none may exceed the global limit.
                    EXPECT_GT(run.htm.commits, 0u);
                    for (unsigned r = cfg.maxRetries; r < 32; ++r) {
                        EXPECT_EQ(run.htm.commitsByRetries.count(r),
                                  0u)
                            << "non-fallback commit with " << r
                            << " counted retries";
                    }
                } catch (const InvariantViolationError &err) {
                    // Violated: named invariant, byte-identical
                    // replay from the repro string alone.
                    EXPECT_FALSE(err.invariant().empty());
                    EXPECT_EQ(replayFromRepro(err.what()),
                              std::string(err.what()));
                }
            }
        }
    }
}

TEST(AdaptivePolicyProperty, AdaptiveRunsAreDeterministic)
{
    // Same (spec, workload, params) -> byte-identical results,
    // capture pass included.
    const WorkloadParams params = landscapeParams();
    const SystemConfig cfg =
        makeConfigFromSpec("A+faults-delay-jitter");
    const RunResult first = runOnce(cfg, "bayes", params);
    const RunResult second = runOnce(cfg, "bayes", params);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.htm.commits, second.htm.commits);
    EXPECT_EQ(first.htm.aborts, second.htm.aborts);
    EXPECT_EQ(first.energy.total(), second.energy.total());
    EXPECT_EQ(first.decisionReport, second.decisionReport);
    EXPECT_FALSE(first.decisionReport.empty());
}

} // namespace
} // namespace clearsim
