/**
 * @file
 * Fuzz-style property tests: randomly generated atomic regions over
 * a shared counter pool, executed concurrently under every
 * configuration. Each region performs a random mix of direct
 * increments, table-indirected increments, value-dependent branch
 * increments and read-only probes; the generator tracks exactly how
 * many increments every *committed* invocation performs (via a
 * per-core tally written inside the region), so the global
 * conservation invariant
 *     sum(pool) == sum(tallies)
 * must hold regardless of which mode (speculative / S-CL / NS-CL /
 * fallback) each invocation committed in. This explores region
 * shapes none of the hand-written workloads cover.
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

constexpr unsigned kPoolLines = 24;

/** One generated operation. */
struct FuzzOp
{
    enum class Kind : std::uint8_t
    {
        DirectInc,   ///< increment pool[idx]
        IndirectInc, ///< increment pool[table[idx]]
        BranchInc,   ///< if (pool[idx] & 1) increment pool[idx2]
        Probe,       ///< read-only access
    };
    Kind kind;
    std::uint64_t idx;
    std::uint64_t idx2;
};

/** A generated region: up to 8 ops, trivially copyable. */
struct FuzzProgram
{
    FuzzOp ops[8];
    unsigned count = 0;
    RegionPc pc = 0;
};

SimTask
fuzzBody(TxContext &tx, FuzzProgram prog, Addr pool, Addr table,
         Addr tally)
{
    std::uint64_t increments = 0;
    for (unsigned i = 0; i < prog.count; ++i) {
        const FuzzOp &op = prog.ops[i];
        switch (op.kind) {
          case FuzzOp::Kind::DirectInc: {
              const Addr a = pool + op.idx * kLineBytes;
              TxValue v = co_await tx.load(a);
              co_await tx.store(a, v + TxValue(1));
              ++increments;
              break;
          }
          case FuzzOp::Kind::IndirectInc: {
              TxValue slot =
                  co_await tx.load(table + op.idx * kLineBytes);
              const Addr a = tx.toAddr(
                  TxValue(pool) + slot * TxValue(kLineBytes));
              TxValue v = co_await tx.load(a);
              co_await tx.store(a, v + TxValue(1));
              ++increments;
              break;
          }
          case FuzzOp::Kind::BranchInc: {
              TxValue probe =
                  co_await tx.load(pool + op.idx * kLineBytes);
              if (tx.branchOn(probe & TxValue(1))) {
                  const Addr a = pool + op.idx2 * kLineBytes;
                  TxValue v = co_await tx.load(a);
                  co_await tx.store(a, v + TxValue(1));
                  ++increments;
              }
              break;
          }
          case FuzzOp::Kind::Probe: {
              co_await tx.load(pool + op.idx * kLineBytes);
              break;
          }
        }
    }
    TxValue t = co_await tx.load(tally);
    co_await tx.store(tally, t + TxValue(increments));
}

FuzzProgram
generate(Rng &rng, unsigned region_idx)
{
    FuzzProgram prog;
    prog.pc = 0x100 + region_idx * 0x40;
    prog.count = 1 + static_cast<unsigned>(rng.nextBelow(8));
    for (unsigned i = 0; i < prog.count; ++i) {
        FuzzOp &op = prog.ops[i];
        const double p = rng.nextDouble();
        op.kind = p < 0.4   ? FuzzOp::Kind::DirectInc
                  : p < 0.6 ? FuzzOp::Kind::IndirectInc
                  : p < 0.8 ? FuzzOp::Kind::BranchInc
                            : FuzzOp::Kind::Probe;
        op.idx = rng.nextBelow(kPoolLines);
        op.idx2 = rng.nextBelow(kPoolLines);
    }
    return prog;
}

SimTask
fuzzWorker(System &sys, CoreId core, Addr pool, Addr table,
           Addr tally, Rng rng, unsigned ops)
{
    for (unsigned i = 0; i < ops; ++i) {
        const FuzzProgram prog =
            generate(rng, static_cast<unsigned>(rng.nextBelow(6)));
        co_await sys.runRegion(
            core, prog.pc,
            [prog, pool, table, tally](TxContext &tx) {
                return fuzzBody(tx, prog, pool, table, tally);
            });
        co_await delayFor(sys.queue(), 13 + rng.nextBelow(120));
    }
}

class RandomRegionFuzz
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(RandomRegionFuzz, ConservationUnderAllModes)
{
    const auto &[config, seed] = GetParam();
    SystemConfig cfg = makeConfigByName(config);
    cfg.numCores = 12;
    System sys(cfg, seed);
    BackingStore &store = sys.mem().store();
    const Addr pool = store.allocateLines(kPoolLines);
    const Addr table = store.allocateLines(kPoolLines);
    const Addr tallies = store.allocateLines(12);

    Rng master(seed * 2654435761ull + 1);
    for (unsigned e = 0; e < kPoolLines; ++e)
        store.write(table + e * kLineBytes,
                    master.nextBelow(kPoolLines));

    std::vector<SimTask> workers;
    for (unsigned c = 0; c < 12; ++c) {
        workers.push_back(fuzzWorker(
            sys, static_cast<CoreId>(c), pool, table,
            tallies + c * kLineBytes, master.fork(), 25));
    }
    for (auto &w : workers)
        w.start();
    sys.runToCompletion(2'000'000'000ull);
    for (auto &w : workers)
        ASSERT_TRUE(w.done());

    std::uint64_t pool_sum = 0;
    for (unsigned l = 0; l < kPoolLines; ++l)
        pool_sum += store.read(pool + l * kLineBytes);
    std::uint64_t tally_sum = 0;
    for (unsigned c = 0; c < 12; ++c)
        tally_sum += store.read(tallies + c * kLineBytes);
    EXPECT_EQ(pool_sum, tally_sum)
        << "atomicity violated under " << config << " seed "
        << seed;

    // The machine must end clean.
    for (unsigned c = 0; c < 12; ++c)
        EXPECT_EQ(sys.mem().locks().heldCount(
                      static_cast<CoreId>(c)),
                  0u);
    EXPECT_FALSE(sys.fallback().writerHeld());
    EXPECT_EQ(sys.fallback().readerCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegionFuzz,
    ::testing::Combine(::testing::Values("B", "P", "C", "W"),
                       ::testing::Values(11ull, 22ull, 33ull, 44ull,
                                         55ull)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace clearsim
