/**
 * @file
 * Property test over the canned fault plans: under every plan, on
 * the baseline and CLEAR configurations alike, a run either
 * commits every region within the counted-retry bound (no
 * non-fallback commit ever carries a full budget), or the watchdog
 * raises a *named* invariant whose repro string deterministically
 * replays the identical violation. There is no third outcome: fault
 * injection may slow a run down, never corrupt it silently.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/analyze.hh"
#include "analysis/cert_checker.hh"
#include "analysis/certificate.hh"
#include "fault/fault_plans.hh"
#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "harness/audit.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 6;
    params.seed = 42;
    return params;
}

/** Replay a violation from its repro string; return the what(). */
std::string
replayFromRepro(const std::string &what)
{
    const std::size_t begin = what.find("repro{");
    EXPECT_NE(begin, std::string::npos) << what;
    if (begin == std::string::npos)
        return {};
    const std::string repro =
        what.substr(begin, what.find('}', begin) - begin + 1);

    ReproSpec spec;
    std::string error;
    EXPECT_TRUE(parseReproString(repro, spec, &error)) << error;
    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = spec.seed;
    try {
        runOnce(makeConfigFromSpec(spec.config), spec.workload,
                params);
    } catch (const InvariantViolationError &err) {
        return err.what();
    }
    ADD_FAILURE() << "replay of " << repro << " did not violate";
    return {};
}

TEST(FaultPlanPropertyTest, CommitWithinBoundOrNamedViolation)
{
    const char *bases[] = {"B", "C"};
    const char *workloads[] = {"mwobject", "queue"};
    for (const FaultPlanInfo &plan : faultPlans()) {
        for (const char *base : bases) {
            for (std::uint64_t fault_seed : {1, 17}) {
                const std::string spec =
                    std::string(base) + "+" + plan.name +
                    ":fault.seed=" + std::to_string(fault_seed);
                const SystemConfig cfg = makeConfigFromSpec(spec);
                for (const char *workload : workloads) {
                    SCOPED_TRACE(spec + " / " + workload);
                    try {
                        const RunResult run = runOnce(
                            cfg, workload, smallParams());
                        // Committed: every non-fallback commit
                        // stayed strictly under the counted-retry
                        // budget (the single-retry bound holds).
                        EXPECT_GT(run.htm.commits, 0u);
                        for (unsigned r = cfg.maxRetries; r < 32;
                             ++r) {
                            EXPECT_EQ(
                                run.htm.commitsByRetries.count(r),
                                0u)
                                << "non-fallback commit with " << r
                                << " counted retries";
                        }
                    } catch (const InvariantViolationError &err) {
                        // Violated: the invariant is named and the
                        // repro string alone replays the identical
                        // diagnostic.
                        EXPECT_FALSE(err.invariant().empty());
                        EXPECT_NE(std::string(err.what())
                                      .find("invariant violated: "),
                                  std::string::npos);
                        EXPECT_EQ(replayFromRepro(err.what()),
                                  std::string(err.what()));
                    }
                }
            }
        }
    }
}

/**
 * The certificate-level refinement of the same property: for every
 * region certified ELIGIBLE under C, a faulted run either commits
 * within the single-retry machine contract, or the CertChecker
 * names the falsified premise — and every latched mispredict
 * replays byte-identically from its repro string alone. No silent
 * third outcome.
 */
TEST(FaultPlanPropertyTest, CertCheckerNamesEveryBrokenPromise)
{
    const char *workloads[] = {"mwobject", "queue"};
    for (const FaultPlanInfo &plan : faultPlans()) {
        const std::string spec = std::string("C+") + plan.name +
                                 ":fault.seed=1";
        const SystemConfig cfg = makeConfigFromSpec(spec);
        for (const char *workload : workloads) {
            SCOPED_TRACE(spec + " / " + workload);
            const WorkloadParams params = smallParams();

            // Certificates come from a fault-free capture pass of
            // the same cell, exactly as the audit derives them.
            const AnalyzeOutcome capture = analyzeWithConfig(
                captureConfigFor(cfg), workload, params);
            const CertificateSet certs =
                buildCertificates(capture.analysis, cfg);

            CertChecker checker(certs, cfg);
            ReproSpec repro;
            repro.workload = workload;
            repro.config = spec;
            repro.threads = params.threads;
            repro.ops = params.opsPerThread;
            repro.scale = params.scale;
            repro.seed = params.seed;
            checker.setRepro(makeReproString(repro));

            RunResult run;
            try {
                run = runOnce(cfg, workload, params, true,
                              [&checker](System &sys) {
                                  sys.setTraceTap(
                                      [&checker](
                                          const TraceEvent &e) {
                                          checker.onTrace(e);
                                      });
                              });
            } catch (const InvariantViolationError &) {
                // The watchdog fired first; the machine-level test
                // above owns that branch.
                continue;
            }
            checker.finalize(run.htm, run.cycles);

            // A certified region that exhausted its counted-retry
            // budget must be named, and only then.
            for (const RegionCertificate &cert : certs.regions) {
                if (!cert.premise(PremiseId::SingleRetryBound)
                         .holds)
                    continue;
                const auto it = checker.outcomes().find(cert.pc);
                const std::uint64_t violations =
                    it == checker.outcomes().end()
                        ? 0
                        : it->second.retryBoundViolations;
                const bool named = std::any_of(
                    checker.mispredicts().begin(),
                    checker.mispredicts().end(),
                    [&cert](const Mispredict &record) {
                        return record.pc == cert.pc &&
                               record.premise ==
                                   PremiseId::SingleRetryBound;
                    });
                EXPECT_EQ(violations > 0, named)
                    << "pc " << cert.pc;
            }

            // Every mispredict replays byte-identically from its
            // record alone, faults included.
            for (const Mispredict &record :
                 checker.mispredicts()) {
                AuditMispredict entry;
                entry.config = spec;
                entry.workload = workload;
                entry.retryLimit = cfg.maxRetries;
                entry.seed = params.seed;
                entry.record = record;
                Mispredict replayed;
                std::string error;
                EXPECT_TRUE(replayMispredict(
                    entry, params.seed, replayed, error))
                    << error;
            }
        }
    }
}

} // namespace
} // namespace clearsim
