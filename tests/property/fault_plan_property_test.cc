/**
 * @file
 * Property test over the canned fault plans: under every plan, on
 * the baseline and CLEAR configurations alike, a run either
 * commits every region within the counted-retry bound (no
 * non-fallback commit ever carries a full budget), or the watchdog
 * raises a *named* invariant whose repro string deterministically
 * replays the identical violation. There is no third outcome: fault
 * injection may slow a run down, never corrupt it silently.
 */

#include <gtest/gtest.h>

#include <string>

#include "fault/fault_plans.hh"
#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.threads = 8;
    params.opsPerThread = 6;
    params.seed = 42;
    return params;
}

/** Replay a violation from its repro string; return the what(). */
std::string
replayFromRepro(const std::string &what)
{
    const std::size_t begin = what.find("repro{");
    EXPECT_NE(begin, std::string::npos) << what;
    if (begin == std::string::npos)
        return {};
    const std::string repro =
        what.substr(begin, what.find('}', begin) - begin + 1);

    ReproSpec spec;
    std::string error;
    EXPECT_TRUE(parseReproString(repro, spec, &error)) << error;
    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = spec.seed;
    try {
        runOnce(makeConfigFromSpec(spec.config), spec.workload,
                params);
    } catch (const InvariantViolationError &err) {
        return err.what();
    }
    ADD_FAILURE() << "replay of " << repro << " did not violate";
    return {};
}

TEST(FaultPlanPropertyTest, CommitWithinBoundOrNamedViolation)
{
    const char *bases[] = {"B", "C"};
    const char *workloads[] = {"mwobject", "queue"};
    for (const FaultPlanInfo &plan : faultPlans()) {
        for (const char *base : bases) {
            for (std::uint64_t fault_seed : {1, 17}) {
                const std::string spec =
                    std::string(base) + "+" + plan.name +
                    ":fault.seed=" + std::to_string(fault_seed);
                const SystemConfig cfg = makeConfigFromSpec(spec);
                for (const char *workload : workloads) {
                    SCOPED_TRACE(spec + " / " + workload);
                    try {
                        const RunResult run = runOnce(
                            cfg, workload, smallParams());
                        // Committed: every non-fallback commit
                        // stayed strictly under the counted-retry
                        // budget (the single-retry bound holds).
                        EXPECT_GT(run.htm.commits, 0u);
                        for (unsigned r = cfg.maxRetries; r < 32;
                             ++r) {
                            EXPECT_EQ(
                                run.htm.commitsByRetries.count(r),
                                0u)
                                << "non-fallback commit with " << r
                                << " counted retries";
                        }
                    } catch (const InvariantViolationError &err) {
                        // Violated: the invariant is named and the
                        // repro string alone replays the identical
                        // diagnostic.
                        EXPECT_FALSE(err.invariant().empty());
                        EXPECT_NE(std::string(err.what())
                                      .find("invariant violated: "),
                                  std::string::npos);
                        EXPECT_EQ(replayFromRepro(err.what()),
                                  std::string(err.what()));
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace clearsim
