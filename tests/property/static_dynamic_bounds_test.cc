/**
 * @file
 * Property tests tying the static analyzer to the dynamic machine:
 *
 *  - Non-perturbation: a capture run is cycle- and stats-identical
 *    to a plain run with the same (configuration, seed).
 *  - Dominance: every static per-region bound is >= the matching
 *    dynamically observed value (footprint lines, uops, loads,
 *    stores) of the same run.
 *  - Soundness of ELIGIBLE: a region the analyzer declares ELIGIBLE
 *    never suffers a capacity or SQ-Full abort dynamically.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/analyze.hh"
#include "core/system.hh"
#include "workloads/workload.hh"

namespace clearsim
{
namespace
{

const std::vector<std::pair<std::string, std::string>> kCases = {
    {"bitcoin", "C"},   {"bitcoin", "B"},  {"hashmap", "C"},
    {"arrayswap", "C"}, {"bst", "C"},      {"queue", "B"},
    {"intruder", "C"},
};

AnalyzeRequest
caseRequest(const std::string &workload, const std::string &config)
{
    AnalyzeRequest request;
    request.config = config;
    request.workload = workload;
    request.maxRetries = 4;
    request.params.threads = 8;
    request.params.opsPerThread = 8;
    request.params.scale = 1;
    request.params.seed = 11;
    return request;
}

const RegionAnalysis *
findRegion(const AnalysisResult &analysis, RegionPc pc)
{
    for (const RegionAnalysis &r : analysis.regions) {
        if (r.pc == pc)
            return &r;
    }
    return nullptr;
}

TEST(StaticDynamicBounds, CaptureDoesNotPerturbExecution)
{
    for (const auto &[workload, config] : kCases) {
        SCOPED_TRACE(workload + "/" + config);
        const AnalyzeRequest request = caseRequest(workload, config);
        const AnalyzeOutcome outcome = analyzeWorkload(request);

        // Plain run: same resolved configuration and seed, no
        // recorder installed.
        System sys(outcome.config, request.params.seed);
        auto plain = makeWorkload(workload, request.params);
        const Cycle cycles = runWorkloadThreads(sys, *plain);

        EXPECT_EQ(cycles, outcome.cycles);
        EXPECT_EQ(sys.stats().commits, outcome.dynamicStats.commits);
        EXPECT_EQ(sys.stats().aborts, outcome.dynamicStats.aborts);
    }
}

TEST(StaticDynamicBounds, StaticBoundsDominateDynamicObservations)
{
    for (const auto &[workload, config] : kCases) {
        SCOPED_TRACE(workload + "/" + config);
        const AnalyzeOutcome outcome =
            analyzeWorkload(caseRequest(workload, config));

        ASSERT_FALSE(outcome.dynamicStats.regions.empty());
        for (const auto &[pc, profile] :
             outcome.dynamicStats.regions) {
            SCOPED_TRACE("region pc=" + std::to_string(pc));
            const RegionAnalysis *r =
                findRegion(outcome.analysis, pc);
            ASSERT_NE(r, nullptr)
                << "dynamically profiled region missing from the "
                   "static analysis";

            // The recorder is uncapped while the runtime Footprint
            // stops recording at its capacity, so the static line
            // bound dominates the dynamic one.
            EXPECT_GE(r->capacity.maxLines,
                      profile.maxFootprintLines);
            EXPECT_GE(r->capacity.maxUops, profile.maxAttemptUops);
            EXPECT_GE(r->capacity.maxLoads,
                      profile.maxAttemptLoads);
            EXPECT_GE(r->capacity.maxStores,
                      profile.maxAttemptStores);
            EXPECT_GE(r->observedInvocations, profile.invocations);

            // Indirection: if the machine saw a load-derived
            // address or branch, the taint pass must have too.
            if (profile.sawIndirection) {
                EXPECT_TRUE(r->indirection.addrTainted ||
                            r->indirection.branchTainted);
            }
        }
    }
}

TEST(StaticDynamicBounds, EligibleRegionsNeverCapacityAbort)
{
    for (const auto &[workload, config] : kCases) {
        SCOPED_TRACE(workload + "/" + config);
        const AnalyzeOutcome outcome =
            analyzeWorkload(caseRequest(workload, config));

        for (const RegionAnalysis &r : outcome.analysis.regions) {
            if (r.verdict != Verdict::Eligible)
                continue;
            SCOPED_TRACE("region pc=" + std::to_string(r.pc));
            const auto it = outcome.dynamicStats.regions.find(r.pc);
            if (it == outcome.dynamicStats.regions.end())
                continue;
            EXPECT_EQ(it->second.capacityAborts, 0u)
                << "ELIGIBLE region capacity-aborted";
            EXPECT_EQ(it->second.sqFullAborts, 0u)
                << "ELIGIBLE region hit SQ-Full";
        }
    }
}

TEST(StaticDynamicBounds, AnalysisIsDeterministic)
{
    const AnalyzeOutcome a =
        analyzeWorkload(caseRequest("bitcoin", "C"));
    const AnalyzeOutcome b =
        analyzeWorkload(caseRequest("bitcoin", "C"));
    ASSERT_EQ(a.analysis.regions.size(), b.analysis.regions.size());
    EXPECT_EQ(a.cycles, b.cycles);
    for (std::size_t i = 0; i < a.analysis.regions.size(); ++i) {
        const RegionAnalysis &ra = a.analysis.regions[i];
        const RegionAnalysis &rb = b.analysis.regions[i];
        EXPECT_EQ(ra.pc, rb.pc);
        EXPECT_EQ(ra.verdict, rb.verdict);
        EXPECT_EQ(ra.capacity.maxLines, rb.capacity.maxLines);
        EXPECT_EQ(ra.conflictScore, rb.conflictScore);
    }
}

} // namespace
} // namespace clearsim
