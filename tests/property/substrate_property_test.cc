/**
 * @file
 * Property tests of the substrate layers under randomized
 * operation sequences: the directory's single-writer/multi-reader
 * invariant, cache-model LRU consistency, and event-queue ordering
 * under random scheduling patterns.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "mem/cache_model.hh"
#include "mem/directory.hh"
#include "sim/event_queue.hh"

namespace clearsim
{
namespace
{

class DirectoryProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(DirectoryProperty, SingleWriterMultiReaderInvariant)
{
    Rng rng(GetParam());
    Directory dir(64, 16);

    for (int step = 0; step < 5000; ++step) {
        const LineAddr line = rng.nextBelow(32);
        const CoreId core =
            static_cast<CoreId>(rng.nextBelow(16));
        const double p = rng.nextDouble();
        if (p < 0.45) {
            dir.onRead(core, line);
            EXPECT_TRUE(dir.isSharer(core, line));
        } else if (p < 0.9) {
            dir.onWrite(core, line);
            // After a write, the writer is the sole holder.
            EXPECT_TRUE(dir.isExclusive(core, line));
            EXPECT_EQ(dir.holders(line).size(), 1u);
        } else {
            dir.dropSharer(core, line);
            EXPECT_FALSE(dir.isSharer(core, line));
        }

        // Global invariant: at most one exclusive owner per line,
        // and an owner implies no other sharers.
        unsigned owners = 0;
        for (unsigned c = 0; c < 16; ++c) {
            if (dir.isExclusive(static_cast<CoreId>(c), line))
                ++owners;
        }
        EXPECT_LE(owners, 1u);
        if (owners == 1)
            EXPECT_EQ(dir.holders(line).size(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryProperty,
                         ::testing::Values(1, 2, 3));

class CacheModelProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheModelProperty, OccupancyNeverExceedsWays)
{
    Rng rng(GetParam() + 100);
    CacheModel cache(8, 4);
    std::vector<LineAddr> inserted;

    for (int step = 0; step < 4000; ++step) {
        const LineAddr line = rng.nextBelow(64);
        const double p = rng.nextDouble();
        if (p < 0.6) {
            const CacheInsertResult r = cache.insert(line);
            if (r.inserted)
                inserted.push_back(line);
        } else if (p < 0.75) {
            cache.pin(line);
        } else if (p < 0.9) {
            cache.unpin(line);
        } else {
            cache.invalidate(line);
        }

        // Per set, at most `ways` resident lines.
        for (unsigned set = 0; set < 8; ++set) {
            unsigned resident = 0;
            for (LineAddr l = set; l < 64; l += 8)
                resident += cache.contains(l);
            EXPECT_LE(resident, 4u);
        }
    }
    cache.unpinAll();
    // After unpinning, any line can be inserted again.
    EXPECT_TRUE(cache.insert(rng.nextBelow(64)).inserted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelProperty,
                         ::testing::Values(1, 2, 3));

TEST(EventQueueProperty, RandomSchedulesExecuteInOrder)
{
    Rng rng(77);
    EventQueue queue;
    std::vector<std::pair<Cycle, int>> executed;

    // Seed a chain of events that randomly schedule more events.
    int next_id = 0;
    std::function<void(int)> spawn = [&](int depth) {
        const int id = next_id++;
        executed.push_back({queue.now(), id});
        if (depth <= 0)
            return;
        const unsigned children = 1 + rng.nextBelow(2);
        for (unsigned c = 0; c < children; ++c) {
            queue.scheduleAfter(rng.nextBelow(50),
                                [&spawn, depth] {
                                    spawn(depth - 1);
                                });
        }
    };
    queue.schedule(0, [&spawn] { spawn(9); });
    queue.run();

    // Timestamps observed by handlers must be non-decreasing.
    for (std::size_t i = 1; i < executed.size(); ++i)
        EXPECT_GE(executed[i].first, executed[i - 1].first);
    EXPECT_GT(executed.size(), 50u);
}

} // namespace
} // namespace clearsim
