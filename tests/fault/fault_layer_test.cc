/**
 * @file
 * Unit tests of the fault-injection layer: the injector's
 * determinism contract (every decision a pure function of
 * fault.seed), its liveness guards, the canned fault plans, the
 * `fault.*` ConfigRegistry grammar, and repro-string round-trips.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hh"
#include "fault/fault_plans.hh"
#include "fault/fault_repro.hh"
#include "policy/config_registry.hh"
#include "sim/event_queue.hh"

namespace clearsim
{
namespace
{

/** A plan with every fault class active. */
FaultConfig
everythingPlan(std::uint64_t seed)
{
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.eventJitterPermille = 500;
    cfg.eventJitterMax = 16;
    cfg.nackPermille = 100;
    cfg.retryPermille = 100;
    cfg.retryDelayExtraMax = 32;
    cfg.grantDeferPermille = 300;
    cfg.grantDeferMax = 24;
    cfg.evictPermille = 150;
    cfg.forcedAbortPermille = 50;
    cfg.conflictFlipPermille = 80;
    cfg.fallbackHoldExtra = 12;
    return cfg;
}

/**
 * Drive every decision seam a fixed number of times and flatten the
 * outcomes into one comparable sequence.
 */
std::vector<std::uint64_t>
drawSequence(FaultInjector &inj, unsigned draws)
{
    std::vector<std::uint64_t> seq;
    for (unsigned i = 0; i < draws; ++i) {
        const LineAddr line = 64 + i;
        const CoreId core = static_cast<CoreId>(i % 4);
        seq.push_back(inj.perturbSchedule());
        seq.push_back(static_cast<std::uint64_t>(
            inj.perturbFreeResponse(line, core, (i % 2) == 0)));
        seq.push_back(inj.extraRetryDelay(line, core));
        seq.push_back(inj.dropSharerAfterRead(line, core) ? 1 : 0);
        seq.push_back(inj.forceAbort(line, core) ? 1 : 0);
        seq.push_back(inj.flipVerdict(line, core) ? 1 : 0);
        seq.push_back(inj.extendFallbackHold(core));
    }
    return seq;
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    FaultInjector a(everythingPlan(7));
    FaultInjector b(everythingPlan(7));
    EXPECT_EQ(drawSequence(a, 500), drawSequence(b, 500));
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
    for (unsigned k = 0; k < kNumFaultKinds; ++k) {
        EXPECT_EQ(a.injected(static_cast<FaultKind>(k)),
                  b.injected(static_cast<FaultKind>(k)));
    }
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule)
{
    FaultInjector a(everythingPlan(7));
    FaultInjector b(everythingPlan(8));
    EXPECT_NE(drawSequence(a, 500), drawSequence(b, 500));
}

TEST(FaultInjectorTest, ZeroPlanInjectsNothing)
{
    FaultConfig cfg;
    EXPECT_FALSE(cfg.anyActive());
    FaultInjector inj(cfg);
    for (const std::uint64_t v : drawSequence(inj, 200))
        EXPECT_EQ(v, 0u); // Keep == 0, no delays, no flips
    EXPECT_EQ(inj.totalInjected(), 0u);
}

TEST(FaultInjectorTest, NackNeverTargetsUnNackableRequests)
{
    // Liveness guard: a spurious NACK may only hit requests the
    // protocol already allows to abort.
    FaultConfig cfg;
    cfg.seed = 3;
    cfg.nackPermille = 1000;
    FaultInjector inj(cfg);
    for (unsigned i = 0; i < 200; ++i) {
        EXPECT_EQ(inj.perturbFreeResponse(64 + i, 0, false),
                  FaultInjector::FreeResponse::Keep);
    }
    EXPECT_EQ(inj.injected(FaultKind::SpuriousNack), 0u);
    for (unsigned i = 0; i < 200; ++i) {
        EXPECT_EQ(inj.perturbFreeResponse(64 + i, 0, true),
                  FaultInjector::FreeResponse::Nack);
    }
    EXPECT_EQ(inj.injected(FaultKind::SpuriousNack), 200u);
}

TEST(FaultInjectorTest, DeferredGrantIsRedeliveredNeverDropped)
{
    FaultConfig cfg;
    cfg.seed = 11;
    cfg.grantDeferPermille = 1000;
    cfg.grantDeferMax = 50;
    FaultInjector inj(cfg);
    EventQueue queue;
    inj.bindQueue(&queue);

    unsigned delivered = 0;
    for (unsigned i = 0; i < 20; ++i)
        inj.deliverWake([&delivered] { ++delivered; });
    // Every grant was deferred (permille 1000), none delivered yet.
    EXPECT_EQ(delivered, 0u);
    EXPECT_FALSE(queue.empty());
    while (!queue.empty())
        queue.runOne();
    EXPECT_EQ(delivered, 20u);
    EXPECT_EQ(inj.injected(FaultKind::GrantDefer), 20u);
}

TEST(FaultPlansTest, CannedPlansRegisteredAndApplied)
{
    const auto &plans = faultPlans();
    ASSERT_EQ(plans.size(), 3u);
    for (const FaultPlanInfo &plan : plans) {
        FaultConfig cfg;
        ASSERT_TRUE(applyFaultPlan(plan.name, cfg)) << plan.name;
        EXPECT_TRUE(cfg.watchdog) << plan.name;
        EXPECT_TRUE(cfg.anyActive()) << plan.name;
    }
    FaultConfig cfg;
    EXPECT_FALSE(applyFaultPlan("faults-no-such-plan", cfg));
    EXPECT_FALSE(cfg.anyActive());
}

TEST(FaultPlansTest, PlansAreConfigRegistryModifiers)
{
    const SystemConfig nack =
        makeConfigFromSpec("C+faults-nack-storm:fault.seed=7");
    EXPECT_EQ(nack.fault.nackPermille, 80u);
    EXPECT_EQ(nack.fault.retryPermille, 120u);
    EXPECT_EQ(nack.fault.retryDelayExtraMax, 200u);
    EXPECT_EQ(nack.fault.seed, 7u);
    EXPECT_TRUE(nack.fault.watchdog);

    const SystemConfig jitter =
        makeConfigFromSpec("C+faults-delay-jitter");
    EXPECT_EQ(jitter.fault.eventJitterPermille, 300u);
    EXPECT_EQ(jitter.fault.eventJitterMax, 64u);
    EXPECT_EQ(jitter.fault.grantDeferPermille, 200u);
    EXPECT_EQ(jitter.fault.grantDeferMax, 300u);

    const SystemConfig aborts =
        makeConfigFromSpec("B+faults-forced-abort");
    EXPECT_EQ(aborts.fault.forcedAbortPermille, 15u);
    EXPECT_EQ(aborts.fault.conflictFlipPermille, 50u);
    EXPECT_EQ(aborts.fault.fallbackHoldExtra, 500u);
}

TEST(FaultPlansTest, FaultKeysCoverEveryKnob)
{
    const SystemConfig cfg = makeConfigFromSpec(
        "B:fault.seed=99:fault.jitter=5:fault.jitter-max=9"
        ":fault.nack=1:fault.retry=2:fault.retry-delay=7"
        ":fault.grant-defer=2:fault.grant-defer-max=11"
        ":fault.evict=3:fault.forced-abort=4:fault.conflict-flip=6"
        ":fault.fallback-hold=8:fault.watchdog=1:fault.horizon=1000");
    EXPECT_EQ(cfg.fault.seed, 99u);
    EXPECT_EQ(cfg.fault.eventJitterPermille, 5u);
    EXPECT_EQ(cfg.fault.eventJitterMax, 9u);
    EXPECT_EQ(cfg.fault.nackPermille, 1u);
    EXPECT_EQ(cfg.fault.retryPermille, 2u);
    EXPECT_EQ(cfg.fault.retryDelayExtraMax, 7u);
    EXPECT_EQ(cfg.fault.grantDeferPermille, 2u);
    EXPECT_EQ(cfg.fault.grantDeferMax, 11u);
    EXPECT_EQ(cfg.fault.evictPermille, 3u);
    EXPECT_EQ(cfg.fault.forcedAbortPermille, 4u);
    EXPECT_EQ(cfg.fault.conflictFlipPermille, 6u);
    EXPECT_EQ(cfg.fault.fallbackHoldExtra, 8u);
    EXPECT_TRUE(cfg.fault.watchdog);
    EXPECT_EQ(cfg.fault.horizon, 1000u);
    EXPECT_TRUE(cfg.fault.anyActive());

    // The watchdog alone activates no fault class: such a run is
    // cycle-identical to a plain one, just self-checking.
    const SystemConfig watch = makeConfigFromSpec("C+watchdog");
    EXPECT_TRUE(watch.fault.watchdog);
    EXPECT_FALSE(watch.fault.anyActive());
}

TEST(FaultReproTest, RoundTrip)
{
    ReproSpec spec;
    spec.workload = "genome";
    spec.config = "C+faults-nack-storm:fault.seed=7:maxRetries=4";
    spec.threads = 8;
    spec.ops = 16;
    spec.scale = 2;
    spec.seed = 42;
    const std::string text = makeReproString(spec);
    EXPECT_EQ(text.rfind("repro{", 0), 0u);

    ReproSpec parsed;
    std::string error;
    ASSERT_TRUE(parseReproString(text, parsed, &error)) << error;
    EXPECT_EQ(parsed.workload, spec.workload);
    EXPECT_EQ(parsed.config, spec.config);
    EXPECT_EQ(parsed.threads, spec.threads);
    EXPECT_EQ(parsed.ops, spec.ops);
    EXPECT_EQ(parsed.scale, spec.scale);
    EXPECT_EQ(parsed.seed, spec.seed);
}

TEST(FaultReproTest, RejectsMalformedStrings)
{
    ReproSpec out;
    std::string error;
    EXPECT_FALSE(parseReproString("not a repro", out, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseReproString(
        "repro{workload=a;threads=1}", out, &error));
    EXPECT_FALSE(parseReproString(
        "repro{workload=a;config=B;bogus=1}", out, &error));
    EXPECT_FALSE(parseReproString(
        "repro{workload=a;config=B;threads=x;ops=1;scale=1;seed=1}",
        out, &error));
}

} // namespace
} // namespace clearsim
