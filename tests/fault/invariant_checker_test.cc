/**
 * @file
 * Unit tests of the runtime InvariantChecker: each invariant in the
 * catalogue is violated synthetically (crafted trace events, a
 * seeded LockManager, a stalled clock) and the latched diagnostic —
 * invariant name, detail text, repro string — is pinned.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "fault/invariant_checker.hh"
#include "mem/lock_manager.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

SystemConfig
checkerConfig(const char *spec = "C+watchdog")
{
    return makeConfigFromSpec(spec);
}

TraceEvent
event(Cycle cycle, CoreId core, TraceKind kind, ExecMode mode,
      unsigned counted_retries, TracePayload payload = {})
{
    return TraceEvent{cycle, core,           0,      kind,
                      mode,  AbortReason::None, counted_retries,
                      payload};
}

TEST(InvariantCheckerTest, CleanRunStaysClean)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.onTrace(event(10, 0, TraceKind::AttemptBegin,
                          ExecMode::Speculative, 0));
    checker.onTrace(
        event(20, 0, TraceKind::Commit, ExecMode::Speculative, 0));
    checker.afterEvent(20, true);
    checker.atEnd(20);
    EXPECT_FALSE(checker.violated());
    EXPECT_EQ(checker.invariant(), "");
}

TEST(InvariantCheckerTest, ExhaustedNonFallbackCommitViolates)
{
    const SystemConfig cfg = checkerConfig();
    ASSERT_GT(cfg.maxRetries, 0u);
    InvariantChecker checker(cfg);
    checker.onTrace(event(10, 1, TraceKind::AttemptBegin,
                          ExecMode::Speculative, cfg.maxRetries));
    checker.onTrace(event(20, 1, TraceKind::Commit,
                          ExecMode::Speculative, cfg.maxRetries));
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "single-retry-bound");
    EXPECT_NE(checker.report().find(
                  "must divert to the fallback path"),
              std::string::npos)
        << checker.report();
}

TEST(InvariantCheckerTest, FallbackCommitIsExemptFromRetryBound)
{
    // The fallback path is the sanctioned escape hatch: it commits
    // carrying the full accumulated retry count legally.
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.onTrace(event(10, 0, TraceKind::AttemptBegin,
                          ExecMode::Fallback, cfg.maxRetries + 3));
    checker.onTrace(event(20, 0, TraceKind::Commit,
                          ExecMode::Fallback, cfg.maxRetries + 3));
    EXPECT_FALSE(checker.violated());
}

TEST(InvariantCheckerTest, NsClCommitMustNotConsumeBudget)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    // Legal: the converted retry begins and commits with the same
    // counted-retry total.
    checker.onTrace(
        event(10, 0, TraceKind::AttemptBegin, ExecMode::NsCl, 1));
    checker.onTrace(
        event(20, 0, TraceKind::Commit, ExecMode::NsCl, 1));
    EXPECT_FALSE(checker.violated());

    // Illegal: the NS-CL attempt consumed a counted retry on the
    // way to its commit.
    checker.onTrace(
        event(30, 0, TraceKind::AttemptBegin, ExecMode::NsCl, 1));
    checker.onTrace(
        event(40, 0, TraceKind::Commit, ExecMode::NsCl, 2));
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "single-retry-bound");
    EXPECT_NE(
        checker.report().find("CLEAR's single retry"),
        std::string::npos)
        << checker.report();
}

TEST(InvariantCheckerTest, NsClAbortViolates)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    TraceEvent abort = event(10, 2, TraceKind::Abort,
                             ExecMode::NsCl, 1);
    abort.reason = AbortReason::MemoryConflict;
    checker.onTrace(abort);
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "ns-cl-must-commit");
    EXPECT_NE(checker.report().find("NS-CL must commit"),
              std::string::npos);
}

TEST(InvariantCheckerTest, NsClDeviationAbortIsLegal)
{
    // A deviation (the region took a different path than the locked
    // footprint) re-runs the region; it is not a protocol violation.
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    TraceEvent abort = event(10, 2, TraceKind::Abort,
                             ExecMode::NsCl, 1);
    abort.reason = AbortReason::Deviation;
    checker.onTrace(abort);
    EXPECT_FALSE(checker.violated());
}

TEST(InvariantCheckerTest, FallbackAbortViolates)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    TraceEvent abort = event(10, 0, TraceKind::Abort,
                             ExecMode::Fallback, 0);
    abort.reason = AbortReason::MemoryConflict;
    checker.onTrace(abort);
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "fallback-must-commit");
    EXPECT_NE(checker.report().find("the fallback path must"),
              std::string::npos);
}

TEST(InvariantCheckerTest, LockOrderViolationIsCaught)
{
    const SystemConfig cfg = checkerConfig();
    ASSERT_GE(cfg.cache.dirSets, 4u);
    InvariantChecker checker(cfg);
    checker.onTrace(
        event(10, 0, TraceKind::AttemptBegin, ExecMode::SCl, 1));
    // In-order (set 2 then set 3): legal.
    checker.onTrace(event(11, 0, TraceKind::LineLockAcquired,
                          ExecMode::SCl, 1, LockPayload{2, 0}));
    checker.onTrace(event(12, 0, TraceKind::LineLockAcquired,
                          ExecMode::SCl, 1, LockPayload{3, 0}));
    EXPECT_FALSE(checker.violated());
    // Out of order (set 3 then set 2): the Figure 5 deadlock seed.
    checker.onTrace(event(13, 0, TraceKind::LineLockAcquired,
                          ExecMode::SCl, 1, LockPayload{2, 0}));
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "lock-order");
    EXPECT_NE(checker.report().find(
                  "lexicographical (set, line) order is required"),
              std::string::npos)
        << checker.report();
}

TEST(InvariantCheckerTest, LockLeakAtAttemptBegin)
{
    const SystemConfig cfg = checkerConfig();
    LockManager locks;
    locks.configureDirSets(cfg.cache.dirSets);
    ASSERT_TRUE(locks.tryLock(64, 0));

    InvariantChecker checker(cfg);
    checker.attachLocks(&locks);
    checker.onTrace(event(10, 0, TraceKind::AttemptBegin,
                          ExecMode::Speculative, 0));
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "lock-leak");
    EXPECT_NE(checker.report().find(
                  "while still holding 1 line lock(s)"),
              std::string::npos)
        << checker.report();
}

TEST(InvariantCheckerTest, LockLeakAtRunEnd)
{
    const SystemConfig cfg = checkerConfig();
    LockManager locks;
    locks.configureDirSets(cfg.cache.dirSets);
    ASSERT_TRUE(locks.tryLock(128, 3));

    InvariantChecker checker(cfg);
    checker.attachLocks(&locks);
    checker.atEnd(500);
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "lock-leak");
    EXPECT_NE(checker.report().find(
                  "ended the run still holding 1 line lock(s)"),
              std::string::npos)
        << checker.report();

    // Cleanly released locks leave no leak.
    locks.unlock(128, 3);
    InvariantChecker clean(cfg);
    clean.attachLocks(&locks);
    clean.atEnd(500);
    EXPECT_FALSE(clean.violated());
}

TEST(InvariantCheckerTest, LivelockPastHorizon)
{
    const SystemConfig cfg =
        checkerConfig("C+watchdog:fault.horizon=1000");
    InvariantChecker checker(cfg);
    // Work pending, clock far past the horizon, no commit yet.
    checker.afterEvent(900, true);
    EXPECT_FALSE(checker.violated());
    checker.afterEvent(1500, true);
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "global-progress");
    EXPECT_NE(checker.report().find("livelock"), std::string::npos);
}

TEST(InvariantCheckerTest, CommitsResetTheProgressHorizon)
{
    const SystemConfig cfg =
        checkerConfig("C+watchdog:fault.horizon=1000");
    InvariantChecker checker(cfg);
    checker.onTrace(
        event(900, 0, TraceKind::Commit, ExecMode::Speculative, 0));
    checker.afterEvent(1500, true);
    EXPECT_FALSE(checker.violated());
    // A drained queue is never a livelock, no matter the clock.
    checker.afterEvent(900000, false);
    EXPECT_FALSE(checker.violated());
}

TEST(InvariantCheckerTest, DeadlockIsNamed)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.noteDeadlock(77, 2);
    ASSERT_TRUE(checker.violated());
    EXPECT_EQ(checker.invariant(), "deadlock");
    EXPECT_NE(checker.report().find(
                  "2 workload thread(s) unfinished: deadlock"),
              std::string::npos)
        << checker.report();
}

TEST(InvariantCheckerTest, FirstViolationIsLatched)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.noteDeadlock(10, 1);
    checker.onTrace(event(20, 0, TraceKind::Commit,
                          ExecMode::Speculative, cfg.maxRetries));
    EXPECT_EQ(checker.invariant(), "deadlock");
}

TEST(InvariantCheckerTest, ReportCarriesReproAndTraceRing)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.setRepro("repro{workload=w;config=C+watchdog;threads=2;"
                     "ops=1;scale=1;seed=9}");
    checker.onTrace(event(10, 0, TraceKind::AttemptBegin,
                          ExecMode::Speculative, 0));
    checker.noteDeadlock(50, 1);
    const std::string report = checker.report();
    EXPECT_NE(report.find("invariant violated: deadlock"),
              std::string::npos);
    EXPECT_NE(report.find("repro: repro{workload=w;"),
              std::string::npos);
    EXPECT_NE(report.find("recent trace (last 1 of 1 events):"),
              std::string::npos)
        << report;

    EXPECT_THROW(checker.raise(), InvariantViolationError);
    try {
        checker.raise();
    } catch (const InvariantViolationError &err) {
        EXPECT_EQ(err.invariant(), "deadlock");
        EXPECT_EQ(err.what(), report);
    }
}

TEST(InvariantCheckerTest, UnrecordedReproIsMarked)
{
    const SystemConfig cfg = checkerConfig();
    InvariantChecker checker(cfg);
    checker.noteDeadlock(50, 1);
    EXPECT_NE(checker.report().find("repro: (not recorded)"),
              std::string::npos);
}

TEST(InvariantCheckerDeathTest, FatalViolationPrintsDiagnostic)
{
    // The fatal path (a top-level handler printing what() before
    // dying) must land the named invariant, the detail line and the
    // repro string on stderr.
    EXPECT_DEATH(
        {
            const SystemConfig cfg = checkerConfig();
            InvariantChecker checker(cfg);
            checker.setRepro("repro{workload=w;config=C+watchdog;"
                             "threads=2;ops=1;scale=1;seed=9}");
            checker.noteDeadlock(50, 1);
            try {
                checker.raise();
            } catch (const InvariantViolationError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                std::abort();
            }
        },
        "invariant violated: deadlock(.|\n)*workload thread\\(s\\) "
        "unfinished(.|\n)*repro: repro\\{workload=w;");
}

} // namespace
} // namespace clearsim
