/**
 * @file
 * End-to-end watchdog tests on a live System: a synthetic livelock
 * (a forced-abort storm against an inexhaustible retry budget, so
 * the baseline retry loop spins forever) must be detected by the
 * global-progress watchdog, the diagnostic must carry a repro
 * string, and replaying that repro string alone must reproduce the
 * identical violation byte for byte.
 */

#include <gtest/gtest.h>

#include <string>

#include "fault/fault_repro.hh"
#include "fault/invariant_checker.hh"
#include "harness/runner.hh"
#include "policy/config_registry.hh"

namespace clearsim
{
namespace
{

/**
 * Every speculative attempt is killed at its first transactional
 * access (forced-abort permille 1000) and the counted-retry budget
 * never exhausts, so no region can ever commit: a true livelock,
 * detectable only by the progress watchdog.
 */
constexpr char kLivelockSpec[] =
    "B:maxRetries=1000000:fault.forced-abort=1000"
    ":fault.watchdog=1:fault.horizon=20000";

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.threads = 4;
    params.opsPerThread = 4;
    params.seed = 42;
    return params;
}

/** Run the livelock scenario, returning the violation's what(). */
std::string
runLivelock()
{
    const SystemConfig cfg = makeConfigFromSpec(kLivelockSpec);
    try {
        runOnce(cfg, "mwobject", smallParams());
    } catch (const InvariantViolationError &err) {
        EXPECT_EQ(err.invariant(), "global-progress");
        return err.what();
    }
    ADD_FAILURE() << "livelock run committed unexpectedly";
    return {};
}

TEST(FaultWatchdogTest, LivelockIsDetectedAndDiagnosed)
{
    const std::string what = runLivelock();
    EXPECT_NE(what.find("invariant violated: global-progress"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("livelock"), std::string::npos);
    EXPECT_NE(what.find("repro{workload=mwobject;config="),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("recent trace (last"), std::string::npos);
}

TEST(FaultWatchdogTest, ViolationIsDeterministic)
{
    // The whole diagnostic — violation cycle, trace ring, repro —
    // must be a pure function of (config spec, seeds).
    EXPECT_EQ(runLivelock(), runLivelock());
}

TEST(FaultWatchdogTest, ReproStringReplaysTheViolation)
{
    const std::string what = runLivelock();
    const std::size_t begin = what.find("repro{");
    ASSERT_NE(begin, std::string::npos) << what;
    const std::size_t end = what.find('}', begin);
    ASSERT_NE(end, std::string::npos);
    const std::string repro =
        what.substr(begin, end - begin + 1);

    ReproSpec spec;
    std::string error;
    ASSERT_TRUE(parseReproString(repro, spec, &error)) << error;
    EXPECT_EQ(spec.workload, "mwobject");
    EXPECT_EQ(spec.config, kLivelockSpec);

    // Rebuild the run from the parsed repro fields alone.
    const SystemConfig cfg = makeConfigFromSpec(spec.config);
    WorkloadParams params;
    params.threads = spec.threads;
    params.opsPerThread = spec.ops;
    params.scale = spec.scale;
    params.seed = spec.seed;
    try {
        runOnce(cfg, spec.workload, params);
        FAIL() << "replayed run committed unexpectedly";
    } catch (const InvariantViolationError &err) {
        EXPECT_EQ(err.invariant(), "global-progress");
        EXPECT_EQ(std::string(err.what()), what);
    }
}

TEST(FaultWatchdogTest, WatchdogAloneIsCycleIdentical)
{
    // The watchdog must observe, never perturb: a watchdog-only run
    // is cycle-identical to the plain config.
    WorkloadParams params = smallParams();
    const RunResult plain =
        runOnce(makeConfigFromSpec("C"), "mwobject", params);
    const RunResult watched =
        runOnce(makeConfigFromSpec("C+watchdog"), "mwobject",
                params);
    EXPECT_EQ(plain.cycles, watched.cycles);
    EXPECT_EQ(plain.htm.commits, watched.htm.commits);
    EXPECT_EQ(plain.htm.aborts, watched.htm.aborts);
    EXPECT_EQ(plain.htm.commitsByMode, watched.htm.commitsByMode);
}

} // namespace
} // namespace clearsim
