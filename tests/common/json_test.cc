/** @file Unit tests for the JSON writer and parser. */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"

namespace clearsim
{
namespace
{

TEST(JsonWriterTest, ObjectKeysKeepOrder)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("b");
    json.value(std::uint64_t(1));
    json.key("a");
    json.value("x");
    json.key("c");
    json.value(true);
    json.endObject();
    EXPECT_EQ(out, "{\"b\":1,\"a\":\"x\",\"c\":true}");
}

TEST(JsonWriterTest, NestedContainers)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("xs");
    json.beginArray();
    json.value(1);
    json.value(-2);
    json.beginObject();
    json.key("k");
    json.null();
    json.endObject();
    json.endArray();
    json.endObject();
    EXPECT_EQ(out, "{\"xs\":[1,-2,{\"k\":null}]}");
}

TEST(JsonWriterTest, DoublesRoundTripLosslessly)
{
    std::string out;
    JsonWriter json(out);
    json.beginArray();
    json.value(0.1);
    json.value(3.0);
    json.endArray();

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(parseJson(out, parsed, error)) << error;
    ASSERT_EQ(parsed.items.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.items[0].asDouble(), 0.1);
    EXPECT_DOUBLE_EQ(parsed.items[1].asDouble(), 3.0);
}

TEST(JsonQuoteTest, EscapesSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(jsonQuote(std::string("a\x01") + "b"),
              "\"a\\u0001b\"");
}

TEST(JsonParserTest, ParsesIntegersLosslessly)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(
        parseJson("18446744073709551615", v, error)) << error;
    EXPECT_EQ(v.type, JsonValue::Type::Uint);
    EXPECT_EQ(v.asUint(), 18446744073709551615ull);

    ASSERT_TRUE(parseJson("-42", v, error)) << error;
    EXPECT_EQ(v.type, JsonValue::Type::Int);
    EXPECT_EQ(v.intValue, -42);

    ASSERT_TRUE(parseJson("1.5", v, error)) << error;
    EXPECT_EQ(v.type, JsonValue::Type::Double);
}

TEST(JsonParserTest, ObjectMembersKeepOrderAndFind)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson("{\"z\":1,\"a\":{\"n\":true}}", v, error))
        << error;
    ASSERT_EQ(v.members.size(), 2u);
    EXPECT_EQ(v.members[0].first, "z");
    EXPECT_EQ(v.members[1].first, "a");
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    const JsonValue *n = a->find("n");
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(n->boolean);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, StringEscapes)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(R"("a\"\\\nA")", v, error)) << error;
    EXPECT_EQ(v.text, "a\"\\\nA");
}

TEST(JsonParserTest, RejectsTrailingContent)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{} x", v, error));
    EXPECT_FALSE(parseJson("1 2", v, error));
    EXPECT_TRUE(parseJson("{}  \n", v, error));
}

TEST(JsonParserTest, RejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("", v, error));
    EXPECT_FALSE(parseJson("{", v, error));
    EXPECT_FALSE(parseJson("[1,]", v, error));
    EXPECT_FALSE(parseJson("{\"a\"}", v, error));
    EXPECT_FALSE(parseJson("\"unterminated", v, error));
    EXPECT_FALSE(parseJson("nul", v, error));
}

TEST(JsonRoundTripTest, WriterOutputReparses)
{
    std::string out;
    JsonWriter json(out);
    json.beginObject();
    json.key("name");
    json.value("tab\tand \"quote\"");
    json.key("big");
    json.value(std::uint64_t(9007199254740993ull));
    json.key("neg");
    json.value(std::int64_t(-7));
    json.endObject();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(parseJson(out, v, error)) << error;
    EXPECT_EQ(v.find("name")->text, "tab\tand \"quote\"");
    EXPECT_EQ(v.find("big")->asUint(), 9007199254740993ull);
    EXPECT_EQ(v.find("neg")->intValue, -7);
}

} // namespace
} // namespace clearsim
