/**
 * @file
 * Adversarial-input tests for the common/json parser.
 *
 * The clearsimd wire protocol hands this parser bytes read straight
 * off a socket, so it must fail closed on anything a confused or
 * malicious client can send: truncated documents, oversized nesting
 * bombs, malformed escapes and random binary garbage all have to
 * come back as a clean `false` with an error message — never a
 * crash, hang or out-of-bounds read. (Under the ASan/UBSan CI job
 * these tests double as an over-read detector.)
 */

#include <gtest/gtest.h>

#include <string>

#include "common/json.hh"
#include "common/rng.hh"

namespace clearsim
{
namespace
{

bool
parses(const std::string &text)
{
    JsonValue value;
    std::string error;
    return parseJson(text, value, error);
}

/** A representative document exercising every value type. */
const char kDocument[] =
    R"({"schema":"clearsimd-wire-v1","id":42,"neg":-7,)"
    R"("pi":3.25,"ok":true,"off":false,"gap":null,)"
    R"("text":"a\"b\\c\nd\u0041","list":[1,[2,[3]],{"k":"v"}]})";

TEST(JsonFuzzTest, ReferenceDocumentParses)
{
    JsonValue value;
    std::string error;
    ASSERT_TRUE(parseJson(kDocument, value, error)) << error;
    EXPECT_EQ(value.find("schema")->text, "clearsimd-wire-v1");
    EXPECT_EQ(value.find("id")->asUint(), 42u);
    EXPECT_EQ(value.find("text")->text, "a\"b\\c\ndA");
}

TEST(JsonFuzzTest, EveryStrictPrefixIsRejected)
{
    // Structural documents have no valid strict prefix, so each
    // truncation point must fail closed (a frame cut short by a
    // dying client is the classic wire-facing input).
    const std::string doc = kDocument;
    for (std::size_t keep = 0; keep < doc.size(); ++keep) {
        JsonValue value;
        std::string error;
        EXPECT_FALSE(parseJson(doc.substr(0, keep), value, error))
            << "prefix of " << keep << " bytes parsed";
        EXPECT_FALSE(error.empty());
    }
}

TEST(JsonFuzzTest, EveryStrictSuffixIsRejectedOrHarmless)
{
    // Suffixes are mostly garbage (":1}," ...); none may crash.
    const std::string doc = kDocument;
    for (std::size_t drop = 1; drop < doc.size(); ++drop) {
        JsonValue value;
        std::string error;
        parseJson(doc.substr(drop), value, error);
    }
    SUCCEED();
}

TEST(JsonFuzzTest, NestingBombIsRejectedNotRecursed)
{
    // One million open brackets would overflow the stack of a
    // depth-unbounded recursive parser long before "unexpected end
    // of input" could be reported. The cap rejects it instead.
    const std::string bomb(1u << 20, '[');
    JsonValue value;
    std::string error;
    ASSERT_FALSE(parseJson(bomb, value, error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos)
        << error;

    const std::string object_bomb = [] {
        std::string text;
        for (int i = 0; i < 200000; ++i)
            text += "{\"k\":";
        return text;
    }();
    ASSERT_FALSE(parseJson(object_bomb, value, error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos)
        << error;
}

TEST(JsonFuzzTest, MaxDepthBoundaryIsExact)
{
    auto nested = [](std::size_t depth) {
        return std::string(depth, '[') + std::string(depth, ']');
    };
    EXPECT_TRUE(parses(nested(kJsonMaxDepth)));
    EXPECT_FALSE(parses(nested(kJsonMaxDepth + 1)));
}

TEST(JsonFuzzTest, MalformedDocumentsFailClosed)
{
    const char *cases[] = {
        "",
        " ",
        "{",
        "}",
        "{]",
        "[}",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "[1,]",
        "[,1]",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"trunc escape \\",
        "\"trunc unicode \\u00",
        "\"bad unicode \\u00zz\"",
        "tru",
        "truely",
        "falsey",
        "nul",
        "nan",
        "NaN",
        "Infinity",
        "+1",
        "-",
        "1 2",
        "{} {}",
        "[1] tail",
        "\x01\x02\x03",
        "{\"a\":1}garbage",
    };
    for (const char *text : cases) {
        JsonValue value;
        std::string error;
        EXPECT_FALSE(parseJson(text, value, error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonFuzzTest, OversizedNumbersDoNotCrash)
{
    // Huge integers overflow strtoull/strtoll and must be rejected;
    // huge exponents saturate strtod (legal) — neither may crash.
    EXPECT_FALSE(parses("123456789012345678901234567890"));
    EXPECT_FALSE(parses("-123456789012345678901234567890"));
    parses("1e999999");
    parses("-1e-999999");
    parses(std::string(100000, '9'));
    SUCCEED();
}

TEST(JsonFuzzTest, LargeFlatDocumentsParse)
{
    // Size alone is not a reason to reject (the wire layer caps
    // frame size; the parser just has to stay linear and correct).
    std::string big = "[";
    for (int i = 0; i < 50000; ++i) {
        if (i)
            big += ",";
        big += "{\"i\":" + std::to_string(i) + "}";
    }
    big += "]";
    JsonValue value;
    std::string error;
    ASSERT_TRUE(parseJson(big, value, error)) << error;
    EXPECT_EQ(value.items.size(), 50000u);
    EXPECT_EQ(value.items[777].find("i")->asUint(), 777u);
}

TEST(JsonFuzzTest, SeededMutationFuzzNeverCrashes)
{
    // Byte-level mutations of a valid document: flip, insert and
    // delete random bytes, then parse. The result may be accepted
    // or rejected; it must never crash, hang or over-read (ASan
    // watches the latter in CI).
    Rng rng(0xfeedfacecafebeefull);
    const std::string base = kDocument;
    std::size_t accepted = 0;
    for (int round = 0; round < 5000; ++round) {
        std::string doc = base;
        const unsigned edits =
            1 + static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned e = 0; e < edits; ++e) {
            const std::uint64_t kind = rng.nextBelow(3);
            const std::size_t at = rng.nextBelow(doc.size());
            const char byte =
                static_cast<char>(rng.nextBelow(256));
            if (kind == 0)
                doc[at] = byte;
            else if (kind == 1)
                doc.insert(doc.begin() +
                               static_cast<std::ptrdiff_t>(at),
                           byte);
            else
                doc.erase(at, 1);
        }
        JsonValue value;
        std::string error;
        if (parseJson(doc, value, error))
            ++accepted;
        else
            ASSERT_FALSE(error.empty());
    }
    // Sanity: mutations overwhelmingly produce invalid documents.
    EXPECT_LT(accepted, 2500u);
}

TEST(JsonFuzzTest, RandomGarbageNeverCrashes)
{
    Rng rng(0x5eed5eed5eed5eedull);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t len = rng.nextBelow(512);
        std::string doc;
        doc.reserve(len);
        for (std::size_t i = 0; i < len; ++i)
            doc.push_back(static_cast<char>(rng.nextBelow(256)));
        JsonValue value;
        std::string error;
        parseJson(doc, value, error);
    }
    SUCCEED();
}

} // namespace
} // namespace clearsim
