/**
 * @file
 * Unit and differential tests for the open-addressing FlatMap.
 *
 * The differential suite replays a randomized insert/lookup/erase
 * workload against std::unordered_map and requires identical
 * contents at every step, including the backward-shift deletion
 * paths that keep probe chains compact.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"

namespace clearsim
{
namespace
{

TEST(FlatMapTest, StartsEmpty)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(7), nullptr);
    EXPECT_FALSE(map.erase(7));
}

TEST(FlatMapTest, InsertFindErase)
{
    FlatMap<std::uint64_t, std::string> map;
    map[1] = "one";
    map[2] = "two";
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(*map.find(1), "one");
    EXPECT_TRUE(map.contains(2));
    EXPECT_FALSE(map.contains(3));

    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.contains(1));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.erase(1));
}

TEST(FlatMapTest, OperatorBracketDefaultConstructs)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map[42], 0);
    map[42] += 5;
    EXPECT_EQ(map[42], 5);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, GrowsPastInitialCapacity)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 0; k < 10000; ++k)
        map[k] = k * 3;
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        ASSERT_NE(map.find(k), nullptr);
        EXPECT_EQ(*map.find(k), k * 3);
    }
}

TEST(FlatMapTest, ClearKeepsWorking)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map[k] = 1;
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map[5] = 9;
    EXPECT_EQ(*map.find(5), 9);
}

TEST(FlatMapTest, IterationVisitsEveryEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 10; k < 60; ++k)
        map[k] = k + 1;
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (const auto &[key, value] : map)
        EXPECT_TRUE(seen.emplace(key, value).second);
    EXPECT_EQ(seen.size(), 50u);
    for (const auto &[key, value] : seen)
        EXPECT_EQ(value, key + 1);
}

TEST(FlatMapTest, CopyIsDeepAndIndependent)
{
    FlatMap<std::uint64_t, int> a;
    for (std::uint64_t k = 0; k < 40; ++k)
        a[k] = static_cast<int>(k);
    FlatMap<std::uint64_t, int> b = a;
    a.erase(3);
    a[100] = -1;
    EXPECT_EQ(b.size(), 40u);
    EXPECT_TRUE(b.contains(3));
    EXPECT_FALSE(b.contains(100));
}

TEST(FlatMapTest, MoveLeavesSourceEmpty)
{
    FlatMap<std::uint64_t, int> a;
    a[1] = 10;
    FlatMap<std::uint64_t, int> b = std::move(a);
    EXPECT_TRUE(a.empty()); // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(*b.find(1), 10);
}

TEST(FlatMapTest, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    map[17] = 1;
    int *p = map.find(17);
    for (std::uint64_t k = 0; k < 700; ++k)
        map[k + 1000] = 2;
    // With the table pre-sized, no growth invalidated the pointer.
    EXPECT_EQ(map.find(17), p);
}

TEST(FlatMapTest, NonTrivialValuesDestructCleanly)
{
    FlatMap<std::uint64_t, std::vector<int>> map;
    for (std::uint64_t k = 0; k < 200; ++k)
        map[k].assign(10, static_cast<int>(k));
    for (std::uint64_t k = 0; k < 200; k += 2)
        EXPECT_TRUE(map.erase(k));
    for (std::uint64_t k = 1; k < 200; k += 2) {
        ASSERT_NE(map.find(k), nullptr);
        EXPECT_EQ(map.find(k)->at(0), static_cast<int>(k));
    }
}

/** Replay a random op stream against std::unordered_map. */
void
runDifferential(std::uint64_t seed, std::uint64_t key_space,
                unsigned ops)
{
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(seed);

    for (unsigned i = 0; i < ops; ++i) {
        const std::uint64_t key = rng.nextBelow(key_space);
        switch (rng.nextBelow(4)) {
          case 0: // insert/overwrite
          case 1:
            flat[key] = i;
            ref[key] = i;
            break;
          case 2: // erase
            EXPECT_EQ(flat.erase(key), ref.erase(key) != 0);
            break;
          case 3: { // lookup
            const std::uint64_t *got = flat.find(key);
            auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_EQ(got, nullptr);
            } else {
                ASSERT_NE(got, nullptr);
                EXPECT_EQ(*got, it->second);
            }
            break;
          }
        }
        ASSERT_EQ(flat.size(), ref.size());
    }
    // Full-content audit in both directions.
    for (const auto &[key, value] : ref) {
        ASSERT_NE(flat.find(key), nullptr);
        EXPECT_EQ(*flat.find(key), value);
    }
    std::size_t walked = 0;
    for (const auto &[key, value] : flat) {
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(value, it->second);
        ++walked;
    }
    EXPECT_EQ(walked, ref.size());
}

TEST(FlatMapDiffTest, SparseKeys)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        runDifferential(seed, 1u << 20, 20000);
}

TEST(FlatMapDiffTest, DenseKeysHammerCollisions)
{
    // A tiny key space maximizes probe-chain overlap, stressing
    // backward-shift erase against live neighbors.
    for (std::uint64_t seed = 10; seed <= 13; ++seed)
        runDifferential(seed, 48, 20000);
}

TEST(FlatMapDiffTest, SequentialKeys)
{
    // Dense sequential addresses are the common simulator pattern
    // (word addresses within one allocation).
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t k = 0; k < 5000; ++k) {
        flat[k * 8] = k;
        ref[k * 8] = k;
    }
    for (std::uint64_t k = 0; k < 5000; k += 3) {
        EXPECT_EQ(flat.erase(k * 8), ref.erase(k * 8) != 0);
    }
    for (const auto &[key, value] : ref) {
        ASSERT_NE(flat.find(key), nullptr);
        EXPECT_EQ(*flat.find(key), value);
    }
    EXPECT_EQ(flat.size(), ref.size());
}

} // namespace
} // namespace clearsim
