/** @file Unit tests for the slab arena and slot-pool allocators. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "common/arena.hh"

namespace clearsim
{
namespace
{

TEST(ArenaTest, AllocationsAreDisjointAndAligned)
{
    Arena arena(256);
    std::vector<std::pair<char *, std::size_t>> blocks;
    for (std::size_t sz : {1u, 7u, 16u, 64u, 100u, 3u}) {
        char *p = static_cast<char *>(arena.allocate(sz, 8));
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
        std::memset(p, 0xAB, sz);
        blocks.emplace_back(p, sz);
    }
    // No two live blocks may overlap.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            char *a = blocks[i].first;
            char *b = blocks[j].first;
            EXPECT_TRUE(a + blocks[i].second <= b ||
                        b + blocks[j].second <= a);
        }
    }
}

TEST(ArenaTest, GrowsPastOneSlab)
{
    Arena arena(128);
    // Allocate far more than one slab's worth.
    for (int i = 0; i < 100; ++i) {
        void *p = arena.allocate(64, 8);
        ASSERT_NE(p, nullptr);
        std::memset(p, 0x5C, 64);
    }
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedSlab)
{
    Arena arena(64);
    void *big = arena.allocate(4096, 16);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0x11, 4096);
    void *small = arena.allocate(8, 8);
    ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, ResetReusesStorage)
{
    Arena arena(1024);
    void *first = arena.allocate(100, 8);
    arena.reset();
    void *again = arena.allocate(100, 8);
    // After reset the bump pointer rewinds to the first slab.
    EXPECT_EQ(first, again);
}

TEST(ArenaTest, TypedAllocationIsAligned)
{
    struct alignas(32) Wide
    {
        double d[4];
    };
    Arena arena(64);
    for (int i = 0; i < 10; ++i) {
        Wide *w = arena.allocate<Wide>(1);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 32, 0u);
    }
}

TEST(SlotPoolTest, AcquireConstructsAndReleaseReuses)
{
    struct Tracked
    {
        explicit Tracked(int v) : value(v) {}
        int value;
    };

    SlotPool<Tracked> pool;
    Tracked *a = pool.acquire(1);
    Tracked *b = pool.acquire(2);
    EXPECT_EQ(a->value, 1);
    EXPECT_EQ(b->value, 2);
    EXPECT_EQ(pool.liveCount(), 2u);

    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 1u);
    // The freed slot is recycled for the next acquire.
    Tracked *c = pool.acquire(3);
    EXPECT_EQ(c, a);
    EXPECT_EQ(c->value, 3);
    pool.release(b);
    pool.release(c);
    EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(SlotPoolTest, RunsDestructorsOnRelease)
{
    struct Counting
    {
        explicit Counting(int *live) : live_(live) { ++*live_; }
        ~Counting() { --*live_; }
        int *live_;
    };

    int live = 0;
    SlotPool<Counting> pool;
    Counting *a = pool.acquire(&live);
    Counting *b = pool.acquire(&live);
    EXPECT_EQ(live, 2);
    pool.release(a);
    EXPECT_EQ(live, 1);
    pool.release(b);
    EXPECT_EQ(live, 0);
}

TEST(SlotPoolTest, SurvivesChurn)
{
    SlotPool<std::uint64_t> pool;
    std::vector<std::uint64_t *> live;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 20; ++i)
            live.push_back(pool.acquire(std::uint64_t(i)));
        // Release every other slot, then acquire over the holes.
        for (std::size_t i = 0; i < live.size(); i += 2) {
            pool.release(live[i]);
            live[i] = pool.acquire(std::uint64_t(round));
        }
        for (std::uint64_t *p : live)
            pool.release(p);
        live.clear();
        EXPECT_EQ(pool.liveCount(), 0u);
    }
}

TEST(FramePoolTest, RecyclesSameSizeFrames)
{
    void *a = frameAlloc(128);
    ASSERT_NE(a, nullptr);
    std::memset(a, 0x77, 128);
    frameFree(a, 128);
    // The freed frame is cached and handed back for the next
    // same-class request.
    void *b = frameAlloc(128);
    EXPECT_EQ(b, a);
    frameFree(b, 128);
    EXPECT_GE(framePoolCachedBytes(), 128u);
}

TEST(FramePoolTest, LargeFramesBypassThePool)
{
    const std::size_t huge = 1 << 20;
    void *p = frameAlloc(huge);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x33, huge);
    const std::size_t cachedBefore = framePoolCachedBytes();
    frameFree(p, huge);
    // Oversized frames go straight back to the system allocator.
    EXPECT_EQ(framePoolCachedBytes(), cachedBefore);
}

} // namespace
} // namespace clearsim
