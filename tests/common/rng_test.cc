/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace clearsim
{
namespace
{

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, NextBoolRespectsProbability)
{
    Rng rng(17);
    int trues = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        trues += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.03);
}

TEST(RngTest, ForkIsIndependent)
{
    Rng parent(21);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

TEST(RngTest, OutputLooksUniform)
{
    Rng rng(31);
    std::vector<int> buckets(16, 0);
    const int n = 16000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.nextBelow(16)];
    for (int count : buckets)
        EXPECT_NEAR(count, n / 16, n / 16 / 3);
}

TEST(RngTest, NextBelowZeroBoundDies)
{
    Rng rng(41);
    EXPECT_DEATH(rng.nextBelow(0), "nonzero bound");
}

TEST(RngTest, NoShortCycle)
{
    Rng rng(37);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(rng.next());
    EXPECT_EQ(seen.size(), 10000u);
}

} // namespace
} // namespace clearsim
