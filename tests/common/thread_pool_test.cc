/** @file Unit tests for the worker pool behind the sweep executor. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_pool.hh"

namespace clearsim
{
namespace
{

TEST(ThreadPoolTest, RunsAllSubmittedJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenAskedForZero)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitForReportsBusyThenDrained)
{
    ThreadPool pool(1);
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    EXPECT_FALSE(pool.waitFor(std::chrono::milliseconds(5)));
    release = true;
    EXPECT_TRUE(pool.waitFor(std::chrono::seconds(10)));
}

TEST(ThreadPoolTest, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPoolTest, JobsMaySubmitMoreJobs)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&pool, &count] {
        ++count;
        pool.submit([&count] { ++count; });
    });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

} // namespace
} // namespace clearsim
