/** @file Unit tests for the statistics toolkit. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace clearsim
{
namespace
{

TEST(BoundedHistogramTest, CountsExactValues)
{
    BoundedHistogram h(8);
    h.record(0);
    h.record(3);
    h.record(3);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.sum(), 6u);
}

TEST(BoundedHistogramTest, OverflowBucket)
{
    BoundedHistogram h(4);
    h.record(3);
    h.record(4);
    h.record(100);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(BoundedHistogramTest, MeanIncludesOverflowValues)
{
    BoundedHistogram h(4);
    h.record(2);
    h.record(10);
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(BoundedHistogramTest, MeanOfEmptyIsZero)
{
    BoundedHistogram h(4);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(BoundedHistogramTest, ClearResets)
{
    BoundedHistogram h(4);
    h.record(1);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(BoundedHistogramTest, MergeAddsCounts)
{
    BoundedHistogram a(4);
    BoundedHistogram b(4);
    a.record(1);
    b.record(1);
    b.record(7);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(TrimmedMeanTest, NoTrimIsPlainMean)
{
    EXPECT_DOUBLE_EQ(trimmedMean({1, 2, 3, 4}, 0), 2.5);
}

TEST(TrimmedMeanTest, TrimsOutliers)
{
    // 100 and 0 are dropped.
    EXPECT_DOUBLE_EQ(trimmedMean({0, 2, 2, 2, 100}, 1), 2.0);
}

TEST(TrimmedMeanTest, OverTrimFallsBackToMean)
{
    EXPECT_DOUBLE_EQ(trimmedMean({1, 3}, 5), 2.0);
}

TEST(TrimmedMeanTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(trimmedMean({}, 1), 0.0);
}

// Degenerate trims: whenever 2 * trim >= n the trim would consume
// every sample (or more), so the intended fallback is the plain
// mean of all samples rather than 0/0.

TEST(TrimmedMeanTest, SingleSampleSurvivesAnyTrim)
{
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 0), 7.0);
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 1), 7.0);
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 100), 7.0);
}

TEST(TrimmedMeanTest, TrimExactlyHalfFallsBackToMean)
{
    // trim 2 on 4 samples would leave nothing: plain mean.
    EXPECT_DOUBLE_EQ(trimmedMean({1, 2, 3, 4}, 2), 2.5);
}

TEST(TrimmedMeanTest, TrimJustUnderHalfKeepsTheMiddle)
{
    EXPECT_DOUBLE_EQ(trimmedMean({0, 10, 20, 30, 40}, 2), 20.0);
}

TEST(MeanTest, Basics)
{
    EXPECT_DOUBLE_EQ(mean({2, 4}), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(GeomeanTest, Basics)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(FormatFixedTest, Decimals)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(DistributionTest, CountSumMeanMax)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.record(4);
    d.record(10);
    d.record(1);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 15u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_EQ(d.maxValue(), 10u);
}

TEST(DistributionTest, NearestRankPercentiles)
{
    Distribution d;
    for (std::uint64_t v = 1; v <= 100; ++v)
        d.record(v);
    // Nearest rank: the sample at rank ceil(p/100 * n).
    EXPECT_EQ(d.percentile(50.0), 50u);
    EXPECT_EQ(d.percentile(95.0), 95u);
    EXPECT_EQ(d.percentile(100.0), 100u);
    EXPECT_EQ(d.percentile(1.0), 1u);
}

TEST(DistributionTest, PercentileOfSmallSamples)
{
    Distribution d;
    d.record(7);
    EXPECT_EQ(d.percentile(50.0), 7u);
    EXPECT_EQ(d.percentile(95.0), 7u);
    d.record(3);
    // ceil(0.5 * 2) = 1 -> the smaller sample.
    EXPECT_EQ(d.percentile(50.0), 3u);
    EXPECT_EQ(d.percentile(95.0), 7u);
}

TEST(DistributionTest, MergeAppendsSamples)
{
    Distribution a;
    Distribution b;
    a.record(1);
    b.record(9);
    b.record(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 15u);
    EXPECT_EQ(a.maxValue(), 9u);
    EXPECT_EQ(a.percentile(50.0), 5u);
}

TEST(BoundedHistogramTest, NearestRankPercentiles)
{
    BoundedHistogram h(8);
    for (int i = 0; i < 9; ++i)
        h.record(0);
    h.record(6);
    // 10 samples: p50 -> rank 5 (a zero), p95 -> rank 10 (the 6).
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.percentile(95.0), 6u);
    EXPECT_EQ(h.maxValue(), 6u);
}

TEST(BoundedHistogramTest, PercentileOverflowSaturates)
{
    BoundedHistogram h(4);
    h.record(100);
    EXPECT_EQ(h.percentile(50.0), 4u);
    EXPECT_EQ(h.maxValue(), 4u);
}

TEST(DistSummaryTest, OfDistributionAndHistogramAgree)
{
    Distribution d;
    BoundedHistogram h(16);
    for (std::uint64_t v : {1u, 2u, 2u, 3u, 10u}) {
        d.record(v);
        h.record(v);
    }
    const DistSummary sd = DistSummary::of(d);
    const DistSummary sh = DistSummary::of(h);
    EXPECT_EQ(sd.count, 5u);
    EXPECT_EQ(sd.sum, 18u);
    EXPECT_DOUBLE_EQ(sd.mean, 18.0 / 5.0);
    EXPECT_EQ(sd.p50, 2u);
    EXPECT_EQ(sd.p95, 10u);
    EXPECT_EQ(sd.max, 10u);
    EXPECT_EQ(sh.count, sd.count);
    EXPECT_EQ(sh.sum, sd.sum);
    EXPECT_DOUBLE_EQ(sh.mean, sd.mean);
    EXPECT_EQ(sh.p50, sd.p50);
    EXPECT_EQ(sh.p95, sd.p95);
    EXPECT_EQ(sh.max, sd.max);
}

TEST(StatsRegistryTest, KeepsCrossKindRegistrationOrder)
{
    StatsRegistry reg;
    reg.addCounter("a", "first", 1);
    reg.addScalar("b", "second", 2.0);
    reg.addCounter("c", "third", 3);
    reg.addDistribution("d", "fourth", DistSummary{});

    const auto &order = reg.order();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0].kind, StatsRegistry::EntryKind::Counter);
    EXPECT_EQ(reg.counters()[order[0].index].name, "a");
    EXPECT_EQ(order[1].kind, StatsRegistry::EntryKind::Scalar);
    EXPECT_EQ(reg.scalars()[order[1].index].name, "b");
    EXPECT_EQ(order[2].kind, StatsRegistry::EntryKind::Counter);
    EXPECT_EQ(reg.counters()[order[2].index].name, "c");
    EXPECT_EQ(order[3].kind,
              StatsRegistry::EntryKind::Distribution);
    EXPECT_EQ(reg.distributions()[order[3].index].name, "d");
}

TEST(StatsRegistryTest, ReRegisteringUpdatesInPlace)
{
    StatsRegistry reg;
    reg.addCounter("a", "first", 1);
    reg.addCounter("a", "first", 7);
    ASSERT_EQ(reg.counters().size(), 1u);
    ASSERT_EQ(reg.order().size(), 1u);
    std::uint64_t value = 0;
    EXPECT_TRUE(reg.counterValue("a", value));
    EXPECT_EQ(value, 7u);
}

} // namespace
} // namespace clearsim
