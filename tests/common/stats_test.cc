/** @file Unit tests for the statistics toolkit. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace clearsim
{
namespace
{

TEST(BoundedHistogramTest, CountsExactValues)
{
    BoundedHistogram h(8);
    h.record(0);
    h.record(3);
    h.record(3);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.sum(), 6u);
}

TEST(BoundedHistogramTest, OverflowBucket)
{
    BoundedHistogram h(4);
    h.record(3);
    h.record(4);
    h.record(100);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(BoundedHistogramTest, MeanIncludesOverflowValues)
{
    BoundedHistogram h(4);
    h.record(2);
    h.record(10);
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(BoundedHistogramTest, MeanOfEmptyIsZero)
{
    BoundedHistogram h(4);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(BoundedHistogramTest, ClearResets)
{
    BoundedHistogram h(4);
    h.record(1);
    h.clear();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(BoundedHistogramTest, MergeAddsCounts)
{
    BoundedHistogram a(4);
    BoundedHistogram b(4);
    a.record(1);
    b.record(1);
    b.record(7);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(TrimmedMeanTest, NoTrimIsPlainMean)
{
    EXPECT_DOUBLE_EQ(trimmedMean({1, 2, 3, 4}, 0), 2.5);
}

TEST(TrimmedMeanTest, TrimsOutliers)
{
    // 100 and 0 are dropped.
    EXPECT_DOUBLE_EQ(trimmedMean({0, 2, 2, 2, 100}, 1), 2.0);
}

TEST(TrimmedMeanTest, OverTrimFallsBackToMean)
{
    EXPECT_DOUBLE_EQ(trimmedMean({1, 3}, 5), 2.0);
}

TEST(TrimmedMeanTest, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(trimmedMean({}, 1), 0.0);
}

// Degenerate trims: whenever 2 * trim >= n the trim would consume
// every sample (or more), so the intended fallback is the plain
// mean of all samples rather than 0/0.

TEST(TrimmedMeanTest, SingleSampleSurvivesAnyTrim)
{
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 0), 7.0);
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 1), 7.0);
    EXPECT_DOUBLE_EQ(trimmedMean({7}, 100), 7.0);
}

TEST(TrimmedMeanTest, TrimExactlyHalfFallsBackToMean)
{
    // trim 2 on 4 samples would leave nothing: plain mean.
    EXPECT_DOUBLE_EQ(trimmedMean({1, 2, 3, 4}, 2), 2.5);
}

TEST(TrimmedMeanTest, TrimJustUnderHalfKeepsTheMiddle)
{
    EXPECT_DOUBLE_EQ(trimmedMean({0, 10, 20, 30, 40}, 2), 20.0);
}

TEST(MeanTest, Basics)
{
    EXPECT_DOUBLE_EQ(mean({2, 4}), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(GeomeanTest, Basics)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(FormatFixedTest, Decimals)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

} // namespace
} // namespace clearsim
