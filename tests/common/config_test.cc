/** @file Unit tests for the configuration presets. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/types.hh"

namespace clearsim
{
namespace
{

TEST(ConfigTest, BaselineMatchesTable2)
{
    const SystemConfig cfg = makeBaselineConfig();
    EXPECT_EQ(cfg.numCores, 32u);
    EXPECT_EQ(cfg.core.robEntries, 352u);
    EXPECT_EQ(cfg.core.lqEntries, 128u);
    EXPECT_EQ(cfg.core.sqEntries, 72u);
    EXPECT_EQ(cfg.core.physRegs, 180u);
    // 48 KiB 12-way L1D.
    EXPECT_EQ(cfg.cache.l1Sets * cfg.cache.l1Ways * kLineBytes,
              48u * 1024);
    // 512 KiB 8-way L2.
    EXPECT_EQ(cfg.cache.l2Sets * cfg.cache.l2Ways * kLineBytes,
              512u * 1024);
    // 4 MiB 16-way L3.
    EXPECT_EQ(cfg.cache.l3Sets * cfg.cache.l3Ways * kLineBytes,
              4u * 1024 * 1024);
    EXPECT_EQ(cfg.cache.l1Latency, 1u);
    EXPECT_EQ(cfg.cache.l2Latency, 10u);
    EXPECT_EQ(cfg.cache.l3Latency, 45u);
    EXPECT_EQ(cfg.cache.memLatency, 80u);
    EXPECT_FALSE(cfg.clear.enabled);
    EXPECT_EQ(cfg.htmPolicy, HtmPolicy::RequesterWins);
}

TEST(ConfigTest, ClearStructureSizesMatchSection5)
{
    const SystemConfig cfg = makeClearConfig();
    EXPECT_TRUE(cfg.clear.enabled);
    EXPECT_EQ(cfg.clear.ertEntries, 16u);
    EXPECT_EQ(cfg.clear.altEntries, 32u);
    EXPECT_EQ(cfg.clear.crtEntries, 64u);
    EXPECT_EQ(cfg.clear.crtWays, 8u);
    EXPECT_EQ(cfg.clear.sqFullSaturation, 3u);
}

TEST(ConfigTest, FourPresets)
{
    EXPECT_EQ(makeBaselineConfig().name, "B");
    EXPECT_EQ(makePowerTmConfig().name, "P");
    EXPECT_EQ(makeClearConfig().name, "C");
    EXPECT_EQ(makeClearPowerConfig().name, "W");

    EXPECT_EQ(makePowerTmConfig().htmPolicy, HtmPolicy::PowerTm);
    EXPECT_FALSE(makePowerTmConfig().clear.enabled);
    EXPECT_EQ(makeClearConfig().htmPolicy,
              HtmPolicy::RequesterWins);
    EXPECT_TRUE(makeClearPowerConfig().clear.enabled);
    EXPECT_EQ(makeClearPowerConfig().htmPolicy, HtmPolicy::PowerTm);
}

TEST(ConfigTest, MakeByName)
{
    for (const char *name : {"B", "P", "C", "W"})
        EXPECT_EQ(makeConfigByName(name).name, name);
}

TEST(ConfigTest, FootprintCapacityTracksAltSize)
{
    // Floor of 64 for the default and smaller ALTs; 2x the ALT once
    // the ALT outgrows half the floor, so recording always extends
    // past the lockable bound.
    ClearConfig clear;
    EXPECT_EQ(clear.altEntries, 32u);
    EXPECT_EQ(footprintCapacity(clear), 64u);
    clear.altEntries = 8;
    EXPECT_EQ(footprintCapacity(clear), 64u);
    clear.altEntries = 33;
    EXPECT_EQ(footprintCapacity(clear), 66u);
    clear.altEntries = 128;
    EXPECT_EQ(footprintCapacity(clear), 256u);
    // The capacity strictly exceeds the ALT: "just fits" is always
    // distinguishable from "overflows".
    for (unsigned alt : {1u, 16u, 32u, 64u, 100u, 1024u}) {
        clear.altEntries = alt;
        EXPECT_GT(footprintCapacity(clear), alt);
    }
}

TEST(TypesTest, LineArithmetic)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineBase(3), 192u);
    EXPECT_EQ(lineOf(lineBase(12345)), 12345u);
}

} // namespace
} // namespace clearsim
