/**
 * @file
 * System-level tests of CLEAR's finer behaviors: CRT feeding and
 * its effect on the next S-CL plan, deviation handling (Section
 * 4.4.2's non-discoverable marking), flat nesting, and the
 * commit-mode signatures of representative workloads (Figure 12).
 */

#include <gtest/gtest.h>

#include "clearsim/clearsim.hh"

namespace clearsim
{
namespace
{

SystemConfig
config(const char *preset, unsigned cores)
{
    SystemConfig cfg = makeConfigByName(preset);
    cfg.numCores = cores;
    return cfg;
}

double
modeShare(const HtmStats &stats, ExecMode mode)
{
    if (stats.commits == 0)
        return 0.0;
    return static_cast<double>(
               stats.commitsByMode[static_cast<unsigned>(mode)]) /
           static_cast<double>(stats.commits);
}

HtmStats
runWorkloadUnder(const char *preset, const char *workload,
                 unsigned ops, std::uint64_t seed)
{
    SystemConfig cfg = makeConfigByName(preset);
    WorkloadParams params;
    params.opsPerThread = ops;
    params.seed = seed;
    System sys(cfg, seed);
    auto w = makeWorkload(workload, params);
    runWorkloadThreads(sys, *w);
    EXPECT_TRUE(w->verify(sys).empty());
    return sys.stats();
}

TEST(ClearBehaviorTest, MwobjectCommitsMostlyNsCl)
{
    const HtmStats stats = runWorkloadUnder("C", "mwobject", 24, 1);
    EXPECT_GT(modeShare(stats, ExecMode::NsCl), 0.5);
    EXPECT_LT(modeShare(stats, ExecMode::Fallback), 0.1);
}

TEST(ClearBehaviorTest, BitcoinCommitsMostlySClAmongConverted)
{
    const HtmStats stats = runWorkloadUnder("C", "bitcoin", 24, 2);
    // Likely immutable: indirection present, so conversion targets
    // S-CL, never NS-CL.
    EXPECT_GT(modeShare(stats, ExecMode::SCl), 0.15);
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::NsCl)],
              0u);
}

TEST(ClearBehaviorTest, LabyrinthStaysInFallback)
{
    const HtmStats stats =
        runWorkloadUnder("C", "labyrinth", 10, 3);
    EXPECT_GT(modeShare(stats, ExecMode::Fallback), 0.5);
    EXPECT_LT(modeShare(stats, ExecMode::NsCl) +
                  modeShare(stats, ExecMode::SCl),
              0.05);
}

TEST(ClearBehaviorTest, CrtFeedsNextSClPlan)
{
    // Region in core 0: writes W, reads R (no lock on R under the
    // writes+CRT policy). A conflicting writer on R aborts the
    // S-CL execution once; the CRT then holds R, so the next S-CL
    // attempt locks it too and commits.
    SystemConfig cfg = config("C", 2);
    System sys(cfg, 4);
    BackingStore &store = sys.mem().store();
    const Addr w_line = store.allocateLines(1);
    const Addr r_line = store.allocateLines(1);
    const Addr ptr_cell = store.allocateLines(1);
    store.write(ptr_cell, w_line);

    // Reader-writer region on core 0 (indirection -> S-CL).
    auto body0 = [ptr_cell, r_line](TxContext &tx) -> SimTask {
        TxValue p = co_await tx.load(ptr_cell);
        const Addr target = tx.toAddr(p);
        TxValue r = co_await tx.load(r_line);
        TxValue v = co_await tx.load(target);
        co_await tx.store(target, v + r + TxValue(1));
    };
    // Interfering writer on core 1 keeps updating r_line.
    auto body1 = [r_line](TxContext &tx) -> SimTask {
        TxValue v = co_await tx.load(r_line);
        co_await tx.store(r_line, v + TxValue(1));
    };

    std::vector<SimTask> tasks;
    tasks.push_back([](System &sys, BodyFn body) -> SimTask {
        for (int i = 0; i < 30; ++i)
            co_await sys.runRegion(0, 0x100, body);
    }(sys, body0));
    tasks.push_back([](System &sys, BodyFn body) -> SimTask {
        for (int i = 0; i < 30; ++i) {
            co_await sys.runRegion(1, 0x200, body);
            co_await delayFor(sys.queue(), 40);
        }
    }(sys, body1));
    for (auto &t : tasks)
        t.start();
    sys.runToCompletion(100'000'000ull);

    // The CRT of core 0 must have seen the conflicting read line
    // at least once if any S-CL attempt lost to the writer.
    if (sys.stats().crtInsertions > 0) {
        EXPECT_TRUE(sys.crt(0).contains(lineOf(r_line)));
    }
    EXPECT_GT(sys.stats().sClAttempts, 0u);
}

TEST(ClearBehaviorTest, DeviationMarksRegionNonConvertible)
{
    // A region whose written line changes every execution: after
    // converting to S-CL once and deviating, Section 4.4.2 requires
    // the region to become non-discoverable.
    SystemConfig cfg = config("C", 2);
    System sys(cfg, 5);
    BackingStore &store = sys.mem().store();
    const Addr seq = store.allocateLines(1);
    const Addr arr = store.allocateLines(16);
    const Addr hot = store.allocateLines(1);

    auto shifting = [seq, arr, hot](TxContext &tx) -> SimTask {
        TxValue h = co_await tx.load(hot);
        co_await tx.store(hot, h + TxValue(1));
        TxValue n = co_await tx.load(seq);
        co_await tx.store(seq, n + TxValue(1));
        const Addr target = tx.toAddr(
            TxValue(arr) + (n % TxValue(16)) * TxValue(kLineBytes));
        TxValue v = co_await tx.load(target);
        co_await tx.store(target, v + TxValue(1));
    };
    auto pester = [hot](TxContext &tx) -> SimTask {
        TxValue h = co_await tx.load(hot);
        co_await tx.store(hot, h + TxValue(1));
    };

    std::vector<SimTask> tasks;
    tasks.push_back([](System &sys, BodyFn body) -> SimTask {
        for (int i = 0; i < 40; ++i)
            co_await sys.runRegion(0, 0x100, body);
    }(sys, shifting));
    tasks.push_back([](System &sys, BodyFn body) -> SimTask {
        for (int i = 0; i < 40; ++i) {
            co_await sys.runRegion(1, 0x200, body);
            co_await delayFor(sys.queue(), 25);
        }
    }(sys, pester));
    for (auto &t : tasks)
        t.start();
    sys.runToCompletion(100'000'000ull);

    // If an S-CL attempt ever deviated, discovery must now be off
    // for the region on core 0.
    const auto others = sys.stats().abortsByCategory[static_cast<
        unsigned>(AbortCategory::Others)];
    if (others > 0) {
        const ErtEntry *e = sys.ert(0).find(0x100);
        ASSERT_NE(e, nullptr);
        EXPECT_FALSE(e->isConvertible);
        EXPECT_GT(sys.stats().discoveryDisabled, 0u);
    }
    // Atomicity must hold regardless.
    std::uint64_t arr_sum = 0;
    for (unsigned i = 0; i < 16; ++i)
        arr_sum += store.read(arr + i * kLineBytes);
    EXPECT_EQ(arr_sum, 40u);
    EXPECT_EQ(store.read(seq), 40u);
    EXPECT_EQ(store.read(hot), 80u);
}

TEST(ClearBehaviorTest, FlatNestingSubsumesInnerRegion)
{
    SystemConfig cfg = config("C", 2);
    System sys(cfg, 6);
    const Addr x = sys.mem().store().allocateLines(1);
    const Addr y = sys.mem().store().allocateLines(1);

    auto inner = [y](TxContext &tx) -> SimTask {
        TxValue v = co_await tx.load(y);
        co_await tx.store(y, v + TxValue(1));
    };
    SimTask t = [](System &sys, Addr x, BodyFn inner) -> SimTask {
        co_await sys.runRegion(
            0, 0x100, [&sys, x, inner](TxContext &tx) -> SimTask {
                TxValue v = co_await tx.load(x);
                co_await tx.store(x, v + TxValue(1));
                // Nested region: flattened into this transaction.
                co_await sys.runRegion(0, 0x140, inner);
            });
    }(sys, x, inner);
    t.start();
    sys.runToCompletion(1'000'000ull);

    EXPECT_EQ(sys.mem().store().read(x), 1u);
    EXPECT_EQ(sys.mem().store().read(y), 1u);
    // Exactly one commit: the outer one.
    EXPECT_EQ(sys.stats().commits, 1u);
}

TEST(ClearBehaviorTest, WModeUsesSclAndPowerTogether)
{
    const HtmStats stats = runWorkloadUnder("W", "bitcoin", 24, 7);
    EXPECT_GT(modeShare(stats, ExecMode::SCl), 0.1);
    // The run must terminate cleanly with both mechanisms active —
    // the Section 5.2 nack rules prevent mutual livelock.
    EXPECT_GT(stats.commits, 0u);
}

} // namespace
} // namespace clearsim
