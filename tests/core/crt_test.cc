/** @file Unit tests for the Conflicting Reads Table. */

#include <gtest/gtest.h>

#include "core/crt.hh"

namespace clearsim
{
namespace
{

TEST(CrtTest, InsertAndContains)
{
    Crt crt(16, 4); // 4 sets x 4 ways
    EXPECT_FALSE(crt.contains(10));
    crt.insert(10);
    EXPECT_TRUE(crt.contains(10));
    EXPECT_EQ(crt.occupancy(), 1u);
}

TEST(CrtTest, DuplicateInsertIsIdempotent)
{
    Crt crt(16, 4);
    crt.insert(10);
    crt.insert(10);
    EXPECT_EQ(crt.occupancy(), 1u);
}

TEST(CrtTest, LruEvictionWithinSet)
{
    Crt crt(8, 2); // 4 sets x 2 ways; lines k and k+4 share a set
    crt.insert(0);
    crt.insert(4);
    crt.lookup(0); // refresh 0
    crt.insert(8); // evicts 4
    EXPECT_TRUE(crt.contains(0));
    EXPECT_FALSE(crt.contains(4));
    EXPECT_TRUE(crt.contains(8));
}

TEST(CrtTest, SetsAreIndependent)
{
    Crt crt(8, 2);
    crt.insert(0);
    crt.insert(4);
    crt.insert(1);
    crt.insert(5);
    EXPECT_EQ(crt.occupancy(), 4u);
    EXPECT_TRUE(crt.contains(0));
    EXPECT_TRUE(crt.contains(5));
}

TEST(CrtTest, LookupMissReturnsFalse)
{
    Crt crt(8, 2);
    EXPECT_FALSE(crt.lookup(3));
}

TEST(CrtTest, ResetEmpties)
{
    Crt crt(8, 2);
    crt.insert(1);
    crt.reset();
    EXPECT_EQ(crt.occupancy(), 0u);
    EXPECT_FALSE(crt.contains(1));
}

TEST(CrtTest, PaperGeometry)
{
    // 64 entries, 8-way: 8 sets.
    Crt crt(64, 8);
    for (LineAddr l = 0; l < 64; ++l)
        crt.insert(l);
    EXPECT_EQ(crt.occupancy(), 64u);
    for (LineAddr l = 0; l < 64; ++l)
        EXPECT_TRUE(crt.contains(l));
}

} // namespace
} // namespace clearsim
