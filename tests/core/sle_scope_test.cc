/**
 * @file
 * Tests of the in-core (SLE) speculation scope, Section 4.1/4.3:
 * with speculation confined to the ROB/LQ/SQ window, regions larger
 * than the window cannot complete speculatively and must take the
 * fallback path, while HTM-backed speculation handles them fine.
 */

#include <gtest/gtest.h>

#include "core/region_executor.hh"
#include "core/system.hh"

namespace clearsim
{
namespace
{

/** A region issuing `loads` loads (within one cacheline). */
SimTask
loadHeavyBody(TxContext &tx, Addr base, unsigned loads, Addr out)
{
    TxValue sum(0);
    for (unsigned i = 0; i < loads; ++i)
        sum = sum + co_await tx.load(base + 8 * (i % 8));
    co_await tx.store(out, sum);
}

SimTask
driveOne(System &sys, RegionPc pc, BodyFn body)
{
    co_await sys.runRegion(0, pc, std::move(body));
}

TEST(SleScopeTest, WindowSizedRegionCommitsSpeculatively)
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.scope = SpeculationScope::InCore;
    cfg.numCores = 2;
    System sys(cfg, 1);
    const Addr base = sys.mem().store().allocateLines(1);
    const Addr out = sys.mem().store().allocateLines(1);
    SimTask t = driveOne(sys, 0x100, [base, out](TxContext &tx) {
        return loadHeavyBody(tx, base, 32, out);
    });
    t.start();
    sys.runToCompletion(10'000'000ull);
    EXPECT_EQ(sys.stats().commitsByMode[static_cast<unsigned>(
                  ExecMode::Speculative)],
              1u);
    EXPECT_EQ(sys.stats().aborts, 0u);
}

TEST(SleScopeTest, OversizedRegionFallsBackUnderInCore)
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.scope = SpeculationScope::InCore;
    cfg.numCores = 2;
    cfg.maxRetries = 2;
    System sys(cfg, 2);
    const Addr base = sys.mem().store().allocateLines(1);
    const Addr out = sys.mem().store().allocateLines(1);
    // More loads than the 128-entry LQ.
    SimTask t = driveOne(sys, 0x100, [base, out](TxContext &tx) {
        return loadHeavyBody(tx, base, 200, out);
    });
    t.start();
    sys.runToCompletion(10'000'000ull);
    EXPECT_EQ(sys.stats().commitsByMode[static_cast<unsigned>(
                  ExecMode::Fallback)],
              1u);
    EXPECT_GT(sys.stats().abortsByCategory[static_cast<unsigned>(
                  AbortCategory::Others)],
              0u);
}

TEST(SleScopeTest, SameRegionCommitsSpeculativelyUnderHtm)
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.scope = SpeculationScope::OutOfCore;
    cfg.numCores = 2;
    System sys(cfg, 3);
    const Addr base = sys.mem().store().allocateLines(1);
    const Addr out = sys.mem().store().allocateLines(1);
    SimTask t = driveOne(sys, 0x100, [base, out](TxContext &tx) {
        return loadHeavyBody(tx, base, 200, out);
    });
    t.start();
    sys.runToCompletion(10'000'000ull);
    EXPECT_EQ(sys.stats().commitsByMode[static_cast<unsigned>(
                  ExecMode::Speculative)],
              1u);
}

TEST(SleScopeTest, ClearStillConvertsSmallRegionsUnderInCore)
{
    SystemConfig cfg = makeClearConfig();
    cfg.scope = SpeculationScope::InCore;
    cfg.numCores = 4;
    System sys(cfg, 4);
    const Addr counter = sys.mem().store().allocateLines(1);

    auto inc = [counter](TxContext &tx) -> SimTask {
        TxValue v = co_await tx.load(counter);
        co_await tx.store(counter, v + TxValue(1));
    };
    std::vector<SimTask> tasks;
    for (unsigned c = 0; c < 4; ++c) {
        tasks.push_back([](System &sys, CoreId core,
                           BodyFn body) -> SimTask {
            for (int i = 0; i < 20; ++i)
                co_await sys.runRegion(core, 0x100, body);
        }(sys, static_cast<CoreId>(c), inc));
    }
    for (auto &t : tasks)
        t.start();
    sys.runToCompletion(10'000'000ull);
    EXPECT_EQ(sys.mem().store().read(counter), 80u);
    EXPECT_GT(sys.stats().commitsByMode[static_cast<unsigned>(
                  ExecMode::NsCl)],
              0u);
}

} // namespace
} // namespace clearsim
