/** @file Unit tests for the Explored Region Table. */

#include <gtest/gtest.h>

#include "core/ert.hh"

namespace clearsim
{
namespace
{

TEST(ErtTest, NewEntriesGetDefaults)
{
    Ert ert(4, 3);
    const ErtEntry &e = ert.lookupOrInsert(0x100);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.pc, 0x100u);
    EXPECT_TRUE(e.isConvertible);
    EXPECT_TRUE(e.isImmutable);
    EXPECT_EQ(e.sqFullCounter, 0u);
}

TEST(ErtTest, LookupReturnsSameEntry)
{
    Ert ert(4, 3);
    ErtEntry &e = ert.lookupOrInsert(0x100);
    e.isConvertible = false;
    EXPECT_FALSE(ert.lookupOrInsert(0x100).isConvertible);
    EXPECT_EQ(ert.occupancy(), 1u);
}

TEST(ErtTest, FindWithoutAllocation)
{
    Ert ert(4, 3);
    EXPECT_EQ(ert.find(0x100), nullptr);
    ert.lookupOrInsert(0x100);
    EXPECT_NE(ert.find(0x100), nullptr);
    EXPECT_EQ(ert.occupancy(), 1u);
}

TEST(ErtTest, LruEvictionForgetsOldRegions)
{
    Ert ert(2, 3);
    ert.lookupOrInsert(0x100).isConvertible = false;
    ert.lookupOrInsert(0x200);
    ert.lookupOrInsert(0x100); // refresh 0x100
    ert.lookupOrInsert(0x300); // evicts 0x200
    EXPECT_NE(ert.find(0x100), nullptr);
    EXPECT_EQ(ert.find(0x200), nullptr);
    EXPECT_NE(ert.find(0x300), nullptr);
    // 0x100's learned state survived.
    EXPECT_FALSE(ert.find(0x100)->isConvertible);
}

TEST(ErtTest, EvictedRegionComesBackWithDefaults)
{
    Ert ert(1, 3);
    ert.lookupOrInsert(0x100).isConvertible = false;
    ert.lookupOrInsert(0x200); // evicts 0x100
    EXPECT_TRUE(ert.lookupOrInsert(0x100).isConvertible);
}

TEST(ErtTest, DiscoveryEnabledByDefaultAndForUnknown)
{
    Ert ert(4, 3);
    EXPECT_TRUE(ert.discoveryEnabled(0x100));
    ert.lookupOrInsert(0x100);
    EXPECT_TRUE(ert.discoveryEnabled(0x100));
}

TEST(ErtTest, NonConvertibleDisablesDiscovery)
{
    Ert ert(4, 3);
    ert.lookupOrInsert(0x100).isConvertible = false;
    EXPECT_FALSE(ert.discoveryEnabled(0x100));
}

TEST(ErtTest, SqFullCounterSaturatesAndDisables)
{
    Ert ert(4, 3);
    ert.recordSqOverflow(0x100);
    ert.recordSqOverflow(0x100);
    EXPECT_TRUE(ert.discoveryEnabled(0x100));
    ert.recordSqOverflow(0x100);
    EXPECT_FALSE(ert.discoveryEnabled(0x100));
    // Saturating: no further increment.
    ert.recordSqOverflow(0x100);
    EXPECT_EQ(ert.find(0x100)->sqFullCounter, 3u);
}

TEST(ErtTest, CommitDecrementsSqFullCounter)
{
    Ert ert(4, 3);
    ert.recordSqOverflow(0x100);
    ert.recordSqOverflow(0x100);
    ert.recordSqOverflow(0x100);
    EXPECT_FALSE(ert.discoveryEnabled(0x100));
    ert.recordCommit(0x100);
    EXPECT_TRUE(ert.discoveryEnabled(0x100));
    // Decrement floors at zero.
    ert.recordCommit(0x100);
    ert.recordCommit(0x100);
    ert.recordCommit(0x100);
    EXPECT_EQ(ert.find(0x100)->sqFullCounter, 0u);
}

TEST(ErtTest, CommitOfUnknownRegionIsHarmless)
{
    Ert ert(4, 3);
    ert.recordCommit(0xdead);
    EXPECT_EQ(ert.occupancy(), 0u);
}

TEST(ErtTest, ResetInvalidatesAll)
{
    Ert ert(4, 3);
    ert.lookupOrInsert(0x100);
    ert.reset();
    EXPECT_EQ(ert.occupancy(), 0u);
}

} // namespace
} // namespace clearsim
