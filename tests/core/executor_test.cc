/**
 * @file
 * Behavioral tests for the region executor: the retry state
 * machine, CLEAR mode conversion, fallback, and atomicity of every
 * execution mode, driven through small purpose-built regions on a
 * real System.
 */

#include <gtest/gtest.h>

#include "core/region_executor.hh"
#include "core/system.hh"

namespace clearsim
{
namespace
{

/** Increment a counter word; no indirection -> immutable region. */
SimTask
incBody(TxContext &tx, Addr counter)
{
    TxValue v = co_await tx.load(counter);
    tx.alu(1);
    co_await tx.store(counter, v + TxValue(1));
}

/** Increment through a pointer cell -> contains an indirection. */
SimTask
indirectIncBody(TxContext &tx, Addr ptr_cell)
{
    TxValue ptr = co_await tx.load(ptr_cell);
    const Addr target = tx.toAddr(ptr);
    TxValue v = co_await tx.load(target);
    co_await tx.store(target, v + TxValue(1));
}

/** Touch many distinct lines (footprint too large to lock). */
SimTask
wideBody(TxContext &tx, Addr base, unsigned lines, Addr counter)
{
    for (unsigned i = 0; i < lines; ++i) {
        TxValue v = co_await tx.load(base + i * kLineBytes);
        co_await tx.store(base + i * kLineBytes, v + TxValue(1));
    }
    TxValue c = co_await tx.load(counter);
    co_await tx.store(counter, c + TxValue(1));
}

SimTask
worker(System &sys, CoreId core, RegionPc pc, BodyFn body,
       unsigned ops, Rng rng)
{
    for (unsigned i = 0; i < ops; ++i) {
        co_await sys.runRegion(core, pc, body);
        co_await delayFor(sys.queue(), 5 + rng.nextBelow(30));
    }
}

/** Run `threads` workers hammering the same body. */
Cycle
hammer(System &sys, const BodyFn &body, unsigned threads,
       unsigned ops, RegionPc pc = 0x100)
{
    std::vector<SimTask> tasks;
    for (unsigned t = 0; t < threads; ++t) {
        tasks.push_back(worker(sys, static_cast<CoreId>(t), pc,
                               body, ops, sys.rng().fork()));
    }
    for (auto &task : tasks)
        task.start();
    return sys.runToCompletion(500'000'000ull);
}

SystemConfig
smallConfig(const char *preset, unsigned cores)
{
    SystemConfig cfg = makeConfigByName(preset);
    cfg.numCores = cores;
    return cfg;
}

TEST(ExecutorTest, SingleThreadCommitsFirstTry)
{
    System sys(smallConfig("B", 2), 1);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 1, 10);
    EXPECT_EQ(sys.mem().store().read(counter), 10u);
    EXPECT_EQ(sys.stats().commits, 10u);
    EXPECT_EQ(sys.stats().aborts, 0u);
    EXPECT_EQ(sys.stats().commitsByRetries.count(0), 10u);
}

TEST(ExecutorTest, ContendedCounterIsExactUnderEveryConfig)
{
    for (const char *preset : {"B", "P", "C", "W"}) {
        System sys(smallConfig(preset, 8), 2);
        const Addr counter = sys.mem().store().allocateLines(1);
        hammer(sys, [counter](TxContext &tx) {
            return incBody(tx, counter);
        }, 8, 25);
        EXPECT_EQ(sys.mem().store().read(counter), 8u * 25)
            << "config " << preset;
        EXPECT_EQ(sys.stats().commits, 8u * 25) << preset;
    }
}

TEST(ExecutorTest, ConflictsCauseAbortsUnderContention)
{
    System sys(smallConfig("B", 8), 3);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    EXPECT_GT(sys.stats().aborts, 0u);
    EXPECT_GT(sys.stats().abortsByCategory[static_cast<unsigned>(
                  AbortCategory::MemoryConflict)],
              0u);
}

TEST(ExecutorTest, ClearConvertsImmutableRegionToNsCl)
{
    System sys(smallConfig("C", 8), 4);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    const auto &stats = sys.stats();
    EXPECT_GT(stats.nsClAttempts, 0u);
    EXPECT_GT(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::NsCl)],
              0u);
    // An immutable region never converts to S-CL.
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::SCl)],
              0u);
    EXPECT_EQ(sys.mem().store().read(counter), 8u * 25);
}

TEST(ExecutorTest, ClearConvertsIndirectRegionToSCl)
{
    System sys(smallConfig("C", 8), 5);
    const Addr target = sys.mem().store().allocateLines(1);
    const Addr ptr_cell = sys.mem().store().allocateLines(1);
    sys.mem().store().write(ptr_cell, target);
    hammer(sys, [ptr_cell](TxContext &tx) {
        return indirectIncBody(tx, ptr_cell);
    }, 8, 25);
    const auto &stats = sys.stats();
    EXPECT_GT(stats.sClAttempts, 0u);
    EXPECT_GT(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::SCl)],
              0u);
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::NsCl)],
              0u);
    EXPECT_EQ(sys.mem().store().read(target), 8u * 25);
}

TEST(ExecutorTest, BaselineNeverUsesCacheLocking)
{
    System sys(smallConfig("B", 8), 6);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    EXPECT_EQ(sys.stats().nsClAttempts, 0u);
    EXPECT_EQ(sys.stats().sClAttempts, 0u);
    EXPECT_EQ(sys.stats().cachelineLocksAcquired, 0u);
}

TEST(ExecutorTest, ZeroRetriesGoesStraightToFallback)
{
    SystemConfig cfg = smallConfig("B", 4);
    cfg.maxRetries = 0;
    System sys(cfg, 7);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 4, 10);
    const auto &stats = sys.stats();
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::Fallback)],
              stats.commits);
    EXPECT_EQ(sys.mem().store().read(counter), 4u * 10);
}

TEST(ExecutorTest, WideFootprintStaysSpeculativeUnderClear)
{
    // A footprint larger than the 32-entry ALT cannot be locked;
    // CLEAR must keep retrying speculatively or fall back.
    System sys(smallConfig("C", 4), 8);
    const Addr base = sys.mem().store().allocateLines(48);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [base, counter](TxContext &tx) {
        return wideBody(tx, base, 40, counter);
    }, 4, 15);
    const auto &stats = sys.stats();
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::NsCl)],
              0u);
    EXPECT_EQ(stats.commitsByMode[static_cast<unsigned>(
                  ExecMode::SCl)],
              0u);
    EXPECT_EQ(sys.mem().store().read(counter), 4u * 15);
}

TEST(ExecutorTest, PowerTmAcquiresToken)
{
    System sys(smallConfig("P", 8), 9);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    EXPECT_GT(sys.power().acquisitions(), 0u);
    EXPECT_EQ(sys.power().holder(), kNoCore); // all released
    EXPECT_EQ(sys.mem().store().read(counter), 8u * 25);
}

TEST(ExecutorTest, AllLocksReleasedAtEnd)
{
    System sys(smallConfig("W", 8), 10);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    for (unsigned c = 0; c < 8; ++c)
        EXPECT_EQ(sys.mem().locks().heldCount(
                      static_cast<CoreId>(c)),
                  0u);
    EXPECT_FALSE(sys.fallback().writerHeld());
    EXPECT_EQ(sys.fallback().readerCount(), 0u);
}

TEST(ExecutorTest, RetryHistogramsAccountForEveryCommit)
{
    System sys(smallConfig("C", 8), 11);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    const auto &stats = sys.stats();
    EXPECT_EQ(stats.commitsByRetries.total() +
                  stats.fallbackCommitRetries.total(),
              stats.commits);
    std::uint64_t by_mode = 0;
    for (unsigned m = 0; m < kNumExecModes; ++m)
        by_mode += stats.commitsByMode[m];
    EXPECT_EQ(by_mode, stats.commits);
}

TEST(ExecutorTest, DeterministicAcrossRuns)
{
    auto run = [](std::uint64_t seed) {
        System sys(smallConfig("W", 8), seed);
        const Addr counter = sys.mem().store().allocateLines(1);
        const Cycle cycles =
            hammer(sys, [counter](TxContext &tx) {
                return incBody(tx, counter);
            }, 8, 20);
        return std::make_tuple(cycles, sys.stats().commits,
                               sys.stats().aborts);
    };
    EXPECT_EQ(run(33), run(33));
    // Different seeds should (virtually always) diverge in timing.
    EXPECT_NE(std::get<0>(run(33)), std::get<0>(run(34)));
}

TEST(ExecutorTest, ClearBeatsBaselineOnContendedCounter)
{
    const unsigned threads = 8;
    const unsigned ops = 30;
    Cycle cycles_b = 0;
    Cycle cycles_c = 0;
    {
        System sys(smallConfig("B", threads), 12);
        const Addr counter = sys.mem().store().allocateLines(1);
        cycles_b = hammer(sys, [counter](TxContext &tx) {
            return incBody(tx, counter);
        }, threads, ops);
    }
    {
        System sys(smallConfig("C", threads), 12);
        const Addr counter = sys.mem().store().allocateLines(1);
        cycles_c = hammer(sys, [counter](TxContext &tx) {
            return incBody(tx, counter);
        }, threads, ops);
    }
    EXPECT_LT(cycles_c, cycles_b);
}

TEST(ExecutorTest, DiscoveryOverheadIsTracked)
{
    System sys(smallConfig("C", 8), 13);
    const Addr counter = sys.mem().store().allocateLines(1);
    hammer(sys, [counter](TxContext &tx) {
        return incBody(tx, counter);
    }, 8, 25);
    // Contention means failed-mode discovery must have run.
    EXPECT_GT(sys.stats().discoveryFailedModeCycles, 0u);
}

} // namespace
} // namespace clearsim
