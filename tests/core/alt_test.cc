/** @file Unit tests for the Addresses-to-Lock Table / lock plans. */

#include <gtest/gtest.h>

#include "core/alt.hh"

namespace clearsim
{
namespace
{

// 32-entry ALT; 8 directory sets; L1 with 4 sets x 2 ways.
Alt
testAlt()
{
    return Alt(32, 8, 4, 2);
}

Footprint
footprintOf(std::initializer_list<std::pair<LineAddr, bool>> accesses)
{
    Footprint fp(64);
    for (const auto &[line, wrote] : accesses)
        fp.record(line, wrote);
    return fp;
}

TEST(AltTest, EmptyFootprintNotLockable)
{
    EXPECT_FALSE(testAlt().lockable(Footprint(64)));
}

TEST(AltTest, SmallFootprintLockable)
{
    const Footprint fp =
        footprintOf({{1, true}, {2, false}, {3, true}});
    EXPECT_TRUE(testAlt().lockable(fp));
}

TEST(AltTest, OverflowedFootprintNotLockable)
{
    Footprint fp(2);
    fp.record(1, false);
    fp.record(2, false);
    fp.record(3, false);
    EXPECT_FALSE(testAlt().lockable(fp));
}

TEST(AltTest, FootprintBeyondAltCapacityNotLockable)
{
    Alt alt(4, 64, 64, 12);
    Footprint fp(64);
    for (LineAddr l = 0; l < 5; ++l)
        fp.record(l, false);
    EXPECT_FALSE(alt.lockable(fp));
}

TEST(AltTest, L1SetOversubscriptionNotLockable)
{
    // L1 has 4 sets x 2 ways: three lines mapping to set 0 cannot
    // be held simultaneously.
    const Footprint fp =
        footprintOf({{0, true}, {4, true}, {8, true}});
    EXPECT_FALSE(testAlt().lockable(fp));
    const Footprint ok = footprintOf({{0, true}, {4, true}});
    EXPECT_TRUE(testAlt().lockable(ok));
}

TEST(AltTest, PlanSortedByDirSetThenLine)
{
    // Dir sets: line & 7.
    const Footprint fp = footprintOf(
        {{9, true}, {1, true}, {16, true}, {2, true}});
    Crt crt(8, 2);
    const auto plan = testAlt().buildPlan(fp, crt, true);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].line, 16u); // set 0
    EXPECT_EQ(plan[1].line, 1u);  // set 1, lower line first
    EXPECT_EQ(plan[2].line, 9u);  // set 1
    EXPECT_EQ(plan[3].line, 2u);  // set 2
}

TEST(AltTest, LockAllMarksEveryEntry)
{
    const Footprint fp = footprintOf({{1, false}, {2, true}});
    Crt crt(8, 2);
    const auto plan = testAlt().buildPlan(fp, crt, true);
    for (const auto &e : plan)
        EXPECT_TRUE(e.needsLock);
}

TEST(AltTest, WritesPolicyLocksWritesOnly)
{
    const Footprint fp =
        footprintOf({{1, false}, {2, true}, {3, false}});
    Crt crt(8, 2);
    const auto plan = testAlt().buildPlan(fp, crt, false);
    for (const auto &e : plan)
        EXPECT_EQ(e.needsLock, e.line == 2u);
}

TEST(AltTest, CrtReadsAreLockedToo)
{
    // Section 5: reads that conflicted before get Needs Locking.
    const Footprint fp =
        footprintOf({{1, false}, {2, true}, {3, false}});
    Crt crt(8, 2);
    crt.insert(3);
    const auto plan = testAlt().buildPlan(fp, crt, false);
    for (const auto &e : plan) {
        EXPECT_EQ(e.needsLock, e.line == 2u || e.line == 3u)
            << "line " << e.line;
    }
}

TEST(AltTest, UnlockablePlanIsEmpty)
{
    Footprint fp(2);
    fp.record(1, true);
    fp.record(2, true);
    fp.record(3, true);
    Crt crt(8, 2);
    EXPECT_TRUE(testAlt().buildPlan(fp, crt, true).empty());
}

TEST(AltTest, GroupsSplitByDirSet)
{
    const Footprint fp = footprintOf(
        {{1, true}, {9, true}, {17, true}, {2, true}, {3, true}});
    Crt crt(8, 2);
    const Alt alt(32, 8, 64, 12);
    const auto plan = alt.buildPlan(fp, crt, true);
    const auto groups = alt.groupsOf(plan);
    // Sets: {1,9,17} -> set 1 (one group of 3), {2} set 2, {3} set 3.
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].dirSet, 1u);
    EXPECT_EQ(groups[0].end - groups[0].begin, 3u);
    EXPECT_EQ(groups[1].end - groups[1].begin, 1u);
    EXPECT_EQ(groups[2].end - groups[2].begin, 1u);
}

TEST(AltTest, GroupsSkipNonLockingEntries)
{
    const Footprint fp = footprintOf(
        {{1, false}, {9, true}, {17, false}, {2, true}});
    Crt crt(8, 2);
    const Alt alt(32, 8, 64, 12);
    const auto plan = alt.buildPlan(fp, crt, false);
    const auto groups = alt.groupsOf(plan);
    ASSERT_EQ(groups.size(), 2u);
    // Only line 9 needs locking in set 1.
    unsigned members = 0;
    for (std::size_t i = groups[0].begin; i < groups[0].end; ++i)
        members += plan[i].needsLock;
    EXPECT_EQ(members, 1u);
}

} // namespace
} // namespace clearsim
