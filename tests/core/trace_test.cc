/** @file Tests of the execution trace facility. */

#include <gtest/gtest.h>

#include <vector>

#include "core/region_executor.hh"
#include "core/system.hh"

namespace clearsim
{
namespace
{

SimTask
incBody(TxContext &tx, Addr counter)
{
    TxValue v = co_await tx.load(counter);
    co_await tx.store(counter, v + TxValue(1));
}

TEST(TraceTest, NoSinkNoCost)
{
    System sys(makeBaselineConfig(), 1);
    EXPECT_FALSE(sys.tracing());
    sys.emitTrace(TraceEvent{}); // harmless without a sink
}

TEST(TraceTest, UncontendedRunEmitsBeginThenCommit)
{
    SystemConfig cfg = makeBaselineConfig();
    cfg.numCores = 2;
    System sys(cfg, 1);
    std::vector<TraceEvent> events;
    sys.setTraceSink(
        [&events](const TraceEvent &e) { events.push_back(e); });

    const Addr counter = sys.mem().store().allocateLines(1);
    SimTask t = [](System &sys, Addr counter) -> SimTask {
        co_await sys.runRegion(0, 0x700,
                               [counter](TxContext &tx) {
                                   return incBody(tx, counter);
                               });
    }(sys, counter);
    t.start();
    sys.runToCompletion(1'000'000ull);

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, TraceKind::AttemptBegin);
    EXPECT_EQ(events[0].mode, ExecMode::Speculative);
    EXPECT_EQ(events[0].pc, 0x700u);
    EXPECT_EQ(events[1].kind, TraceKind::Commit);
    EXPECT_EQ(events[1].countedRetries, 0u);
    EXPECT_LE(events[0].cycle, events[1].cycle);
}

TEST(TraceTest, ContendedRunEmitsAborts)
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 6;
    System sys(cfg, 2);
    std::vector<TraceEvent> events;
    sys.setTraceSink(
        [&events](const TraceEvent &e) { events.push_back(e); });

    const Addr counter = sys.mem().store().allocateLines(1);
    std::vector<SimTask> workers;
    for (unsigned c = 0; c < 6; ++c) {
        workers.push_back([](System &sys, CoreId core,
                             Addr counter) -> SimTask {
            for (int i = 0; i < 10; ++i) {
                co_await sys.runRegion(
                    core, 0x700, [counter](TxContext &tx) {
                        return incBody(tx, counter);
                    });
            }
        }(sys, static_cast<CoreId>(c), counter));
    }
    for (auto &w : workers)
        w.start();
    sys.runToCompletion(100'000'000ull);

    unsigned begins = 0;
    unsigned commits = 0;
    unsigned aborts = 0;
    for (const TraceEvent &e : events) {
        begins += e.kind == TraceKind::AttemptBegin;
        commits += e.kind == TraceKind::Commit;
        aborts += e.kind == TraceKind::Abort;
    }
    EXPECT_EQ(commits, 60u);
    EXPECT_EQ(aborts, sys.stats().aborts);
    EXPECT_GE(begins, commits);
}

/**
 * A contended CLEAR run exercises the component-level lifecycle
 * events: cacheline locking (with hold durations), conflict
 * verdicts and abort payloads naming the culprit line.
 */
TEST(TraceTest, ContendedClearRunEmitsLifecycleEvents)
{
    SystemConfig cfg = makeClearConfig();
    cfg.numCores = 6;
    System sys(cfg, 2);
    std::vector<TraceEvent> events;
    sys.setTraceSink(
        [&events](const TraceEvent &e) { events.push_back(e); });

    const Addr counter = sys.mem().store().allocateLines(1);
    std::vector<SimTask> workers;
    for (unsigned c = 0; c < 6; ++c) {
        workers.push_back([](System &sys, CoreId core,
                             Addr counter) -> SimTask {
            for (int i = 0; i < 10; ++i) {
                co_await sys.runRegion(
                    core, 0x700, [counter](TxContext &tx) {
                        return incBody(tx, counter);
                    });
            }
        }(sys, static_cast<CoreId>(c), counter));
    }
    for (auto &w : workers)
        w.start();
    sys.runToCompletion(100'000'000ull);

    unsigned acquired = 0;
    unsigned released = 0;
    unsigned verdicts = 0;
    unsigned invalidates = 0;
    for (const TraceEvent &e : events) {
        switch (e.kind) {
          case TraceKind::LineLockAcquired:
            ++acquired;
            break;
          case TraceKind::LineLockReleased: {
            ++released;
            const auto *lock = std::get_if<LockPayload>(&e.payload);
            ASSERT_NE(lock, nullptr);
            EXPECT_NE(lock->line, 0u);
            break;
          }
          case TraceKind::ConflictVerdict: {
            ++verdicts;
            const auto *conflict =
                std::get_if<ConflictPayload>(&e.payload);
            ASSERT_NE(conflict, nullptr);
            EXPECT_NE(conflict->line, 0u);
            if (conflict->requesterWins)
                EXPECT_GT(conflict->victims, 0u);
            break;
          }
          case TraceKind::DirInvalidate:
            ++invalidates;
            break;
          default:
            break;
        }
    }
    // CLEAR locks lines for retries; every acquire is released.
    EXPECT_EQ(acquired, sys.stats().cachelineLocksAcquired);
    EXPECT_EQ(released, acquired);
    EXPECT_GT(verdicts, 0u);
    EXPECT_GT(invalidates, 0u);
    // Stamped in simulation order: cycles never go backwards, and
    // the run advances past cycle 0.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].cycle, events[i - 1].cycle);
    EXPECT_GT(events.back().cycle, 0u);
}

TEST(TraceTest, NameHelpers)
{
    EXPECT_STREQ(traceKindName(TraceKind::Commit), "commit");
    EXPECT_STREQ(execModeName(ExecMode::NsCl), "ns-cl");
    EXPECT_STREQ(abortReasonName(AbortReason::MemoryConflict),
                 "conflict");
    EXPECT_STREQ(abortReasonName(AbortReason::Deviation),
                 "deviation");
}

} // namespace
} // namespace clearsim
