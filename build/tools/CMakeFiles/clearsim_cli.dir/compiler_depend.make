# Empty compiler generated dependencies file for clearsim_cli.
# This may be replaced when dependencies are built.
