file(REMOVE_RECURSE
  "CMakeFiles/clearsim_cli.dir/clearsim_cli.cpp.o"
  "CMakeFiles/clearsim_cli.dir/clearsim_cli.cpp.o.d"
  "clearsim_cli"
  "clearsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
