# Empty compiler generated dependencies file for concurrent_set.
# This may be replaced when dependencies are built.
