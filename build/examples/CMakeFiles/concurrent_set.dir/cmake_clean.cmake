file(REMOVE_RECURSE
  "CMakeFiles/concurrent_set.dir/concurrent_set.cpp.o"
  "CMakeFiles/concurrent_set.dir/concurrent_set.cpp.o.d"
  "concurrent_set"
  "concurrent_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
