# Empty compiler generated dependencies file for bank_transfer.
# This may be replaced when dependencies are built.
