file(REMOVE_RECURSE
  "libclearsim_sim.a"
)
