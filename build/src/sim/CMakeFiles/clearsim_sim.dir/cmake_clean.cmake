file(REMOVE_RECURSE
  "CMakeFiles/clearsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/clearsim_sim.dir/event_queue.cc.o.d"
  "libclearsim_sim.a"
  "libclearsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
