# Empty dependencies file for clearsim_sim.
# This may be replaced when dependencies are built.
