# Empty dependencies file for clearsim_common.
# This may be replaced when dependencies are built.
