# Empty compiler generated dependencies file for clearsim_common.
# This may be replaced when dependencies are built.
