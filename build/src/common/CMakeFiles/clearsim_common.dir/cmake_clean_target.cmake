file(REMOVE_RECURSE
  "libclearsim_common.a"
)
