file(REMOVE_RECURSE
  "CMakeFiles/clearsim_common.dir/config.cc.o"
  "CMakeFiles/clearsim_common.dir/config.cc.o.d"
  "CMakeFiles/clearsim_common.dir/log.cc.o"
  "CMakeFiles/clearsim_common.dir/log.cc.o.d"
  "CMakeFiles/clearsim_common.dir/rng.cc.o"
  "CMakeFiles/clearsim_common.dir/rng.cc.o.d"
  "CMakeFiles/clearsim_common.dir/stats.cc.o"
  "CMakeFiles/clearsim_common.dir/stats.cc.o.d"
  "libclearsim_common.a"
  "libclearsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
