file(REMOVE_RECURSE
  "CMakeFiles/clearsim_harness.dir/csv_export.cc.o"
  "CMakeFiles/clearsim_harness.dir/csv_export.cc.o.d"
  "CMakeFiles/clearsim_harness.dir/runner.cc.o"
  "CMakeFiles/clearsim_harness.dir/runner.cc.o.d"
  "CMakeFiles/clearsim_harness.dir/sweep_cache.cc.o"
  "CMakeFiles/clearsim_harness.dir/sweep_cache.cc.o.d"
  "libclearsim_harness.a"
  "libclearsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
