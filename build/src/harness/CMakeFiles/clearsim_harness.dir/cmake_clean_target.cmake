file(REMOVE_RECURSE
  "libclearsim_harness.a"
)
