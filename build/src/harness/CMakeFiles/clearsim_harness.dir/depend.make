# Empty dependencies file for clearsim_harness.
# This may be replaced when dependencies are built.
