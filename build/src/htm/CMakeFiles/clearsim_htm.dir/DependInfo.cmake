
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/conflict_manager.cc" "src/htm/CMakeFiles/clearsim_htm.dir/conflict_manager.cc.o" "gcc" "src/htm/CMakeFiles/clearsim_htm.dir/conflict_manager.cc.o.d"
  "/root/repo/src/htm/fallback_lock.cc" "src/htm/CMakeFiles/clearsim_htm.dir/fallback_lock.cc.o" "gcc" "src/htm/CMakeFiles/clearsim_htm.dir/fallback_lock.cc.o.d"
  "/root/repo/src/htm/tx_context.cc" "src/htm/CMakeFiles/clearsim_htm.dir/tx_context.cc.o" "gcc" "src/htm/CMakeFiles/clearsim_htm.dir/tx_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clearsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clearsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/clearsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
