# Empty dependencies file for clearsim_htm.
# This may be replaced when dependencies are built.
