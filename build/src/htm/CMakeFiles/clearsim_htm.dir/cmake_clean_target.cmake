file(REMOVE_RECURSE
  "libclearsim_htm.a"
)
