file(REMOVE_RECURSE
  "CMakeFiles/clearsim_htm.dir/conflict_manager.cc.o"
  "CMakeFiles/clearsim_htm.dir/conflict_manager.cc.o.d"
  "CMakeFiles/clearsim_htm.dir/fallback_lock.cc.o"
  "CMakeFiles/clearsim_htm.dir/fallback_lock.cc.o.d"
  "CMakeFiles/clearsim_htm.dir/tx_context.cc.o"
  "CMakeFiles/clearsim_htm.dir/tx_context.cc.o.d"
  "libclearsim_htm.a"
  "libclearsim_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
