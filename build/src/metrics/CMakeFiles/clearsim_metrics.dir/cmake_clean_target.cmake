file(REMOVE_RECURSE
  "libclearsim_metrics.a"
)
