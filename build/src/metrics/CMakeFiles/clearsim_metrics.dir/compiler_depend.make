# Empty compiler generated dependencies file for clearsim_metrics.
# This may be replaced when dependencies are built.
