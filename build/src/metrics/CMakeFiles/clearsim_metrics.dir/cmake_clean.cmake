file(REMOVE_RECURSE
  "CMakeFiles/clearsim_metrics.dir/stats_report.cc.o"
  "CMakeFiles/clearsim_metrics.dir/stats_report.cc.o.d"
  "libclearsim_metrics.a"
  "libclearsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
