file(REMOVE_RECURSE
  "CMakeFiles/clearsim_workloads.dir/arrayswap.cc.o"
  "CMakeFiles/clearsim_workloads.dir/arrayswap.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/bitcoin.cc.o"
  "CMakeFiles/clearsim_workloads.dir/bitcoin.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/bst.cc.o"
  "CMakeFiles/clearsim_workloads.dir/bst.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/deque.cc.o"
  "CMakeFiles/clearsim_workloads.dir/deque.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/hashmap.cc.o"
  "CMakeFiles/clearsim_workloads.dir/hashmap.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/mwobject.cc.o"
  "CMakeFiles/clearsim_workloads.dir/mwobject.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/queue.cc.o"
  "CMakeFiles/clearsim_workloads.dir/queue.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/sorted_list.cc.o"
  "CMakeFiles/clearsim_workloads.dir/sorted_list.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/stack.cc.o"
  "CMakeFiles/clearsim_workloads.dir/stack.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/stamp.cc.o"
  "CMakeFiles/clearsim_workloads.dir/stamp.cc.o.d"
  "CMakeFiles/clearsim_workloads.dir/workload.cc.o"
  "CMakeFiles/clearsim_workloads.dir/workload.cc.o.d"
  "libclearsim_workloads.a"
  "libclearsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
