# Empty dependencies file for clearsim_workloads.
# This may be replaced when dependencies are built.
