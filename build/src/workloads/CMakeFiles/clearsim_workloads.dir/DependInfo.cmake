
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/arrayswap.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/arrayswap.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/arrayswap.cc.o.d"
  "/root/repo/src/workloads/bitcoin.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/bitcoin.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/bitcoin.cc.o.d"
  "/root/repo/src/workloads/bst.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/bst.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/bst.cc.o.d"
  "/root/repo/src/workloads/deque.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/deque.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/deque.cc.o.d"
  "/root/repo/src/workloads/hashmap.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/hashmap.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/hashmap.cc.o.d"
  "/root/repo/src/workloads/mwobject.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/mwobject.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/mwobject.cc.o.d"
  "/root/repo/src/workloads/queue.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/queue.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/queue.cc.o.d"
  "/root/repo/src/workloads/sorted_list.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/sorted_list.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/sorted_list.cc.o.d"
  "/root/repo/src/workloads/stack.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/stack.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/stack.cc.o.d"
  "/root/repo/src/workloads/stamp.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/stamp.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/stamp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/clearsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/clearsim_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clearsim_clear.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/clearsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clearsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/clearsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clearsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
