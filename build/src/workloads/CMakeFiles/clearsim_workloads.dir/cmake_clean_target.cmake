file(REMOVE_RECURSE
  "libclearsim_workloads.a"
)
