file(REMOVE_RECURSE
  "libclearsim_clear.a"
)
