file(REMOVE_RECURSE
  "CMakeFiles/clearsim_clear.dir/alt.cc.o"
  "CMakeFiles/clearsim_clear.dir/alt.cc.o.d"
  "CMakeFiles/clearsim_clear.dir/crt.cc.o"
  "CMakeFiles/clearsim_clear.dir/crt.cc.o.d"
  "CMakeFiles/clearsim_clear.dir/ert.cc.o"
  "CMakeFiles/clearsim_clear.dir/ert.cc.o.d"
  "CMakeFiles/clearsim_clear.dir/region_executor.cc.o"
  "CMakeFiles/clearsim_clear.dir/region_executor.cc.o.d"
  "CMakeFiles/clearsim_clear.dir/system.cc.o"
  "CMakeFiles/clearsim_clear.dir/system.cc.o.d"
  "CMakeFiles/clearsim_clear.dir/trace.cc.o"
  "CMakeFiles/clearsim_clear.dir/trace.cc.o.d"
  "libclearsim_clear.a"
  "libclearsim_clear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_clear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
