# Empty compiler generated dependencies file for clearsim_clear.
# This may be replaced when dependencies are built.
