file(REMOVE_RECURSE
  "libclearsim_energy.a"
)
