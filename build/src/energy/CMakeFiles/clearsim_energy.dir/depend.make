# Empty dependencies file for clearsim_energy.
# This may be replaced when dependencies are built.
