file(REMOVE_RECURSE
  "CMakeFiles/clearsim_energy.dir/energy_model.cc.o"
  "CMakeFiles/clearsim_energy.dir/energy_model.cc.o.d"
  "libclearsim_energy.a"
  "libclearsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
