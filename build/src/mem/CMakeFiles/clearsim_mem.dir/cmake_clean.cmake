file(REMOVE_RECURSE
  "CMakeFiles/clearsim_mem.dir/backing_store.cc.o"
  "CMakeFiles/clearsim_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/clearsim_mem.dir/cache_model.cc.o"
  "CMakeFiles/clearsim_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/clearsim_mem.dir/directory.cc.o"
  "CMakeFiles/clearsim_mem.dir/directory.cc.o.d"
  "CMakeFiles/clearsim_mem.dir/lock_manager.cc.o"
  "CMakeFiles/clearsim_mem.dir/lock_manager.cc.o.d"
  "CMakeFiles/clearsim_mem.dir/memory_system.cc.o"
  "CMakeFiles/clearsim_mem.dir/memory_system.cc.o.d"
  "libclearsim_mem.a"
  "libclearsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
