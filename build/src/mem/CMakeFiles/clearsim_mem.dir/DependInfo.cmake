
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/clearsim_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/clearsim_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/cache_model.cc" "src/mem/CMakeFiles/clearsim_mem.dir/cache_model.cc.o" "gcc" "src/mem/CMakeFiles/clearsim_mem.dir/cache_model.cc.o.d"
  "/root/repo/src/mem/directory.cc" "src/mem/CMakeFiles/clearsim_mem.dir/directory.cc.o" "gcc" "src/mem/CMakeFiles/clearsim_mem.dir/directory.cc.o.d"
  "/root/repo/src/mem/lock_manager.cc" "src/mem/CMakeFiles/clearsim_mem.dir/lock_manager.cc.o" "gcc" "src/mem/CMakeFiles/clearsim_mem.dir/lock_manager.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/clearsim_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/clearsim_mem.dir/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/clearsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
