file(REMOVE_RECURSE
  "libclearsim_mem.a"
)
