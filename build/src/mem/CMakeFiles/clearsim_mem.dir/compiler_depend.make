# Empty compiler generated dependencies file for clearsim_mem.
# This may be replaced when dependencies are built.
