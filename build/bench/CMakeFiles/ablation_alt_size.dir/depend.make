# Empty dependencies file for ablation_alt_size.
# This may be replaced when dependencies are built.
