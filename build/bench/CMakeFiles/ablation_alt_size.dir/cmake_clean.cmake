file(REMOVE_RECURSE
  "CMakeFiles/ablation_alt_size.dir/ablation_alt_size.cpp.o"
  "CMakeFiles/ablation_alt_size.dir/ablation_alt_size.cpp.o.d"
  "ablation_alt_size"
  "ablation_alt_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
