# Empty compiler generated dependencies file for table1_characterization.
# This may be replaced when dependencies are built.
