file(REMOVE_RECURSE
  "CMakeFiles/fig8_execution_time.dir/fig8_execution_time.cpp.o"
  "CMakeFiles/fig8_execution_time.dir/fig8_execution_time.cpp.o.d"
  "fig8_execution_time"
  "fig8_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
