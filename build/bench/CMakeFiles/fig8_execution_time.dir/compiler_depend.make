# Empty compiler generated dependencies file for fig8_execution_time.
# This may be replaced when dependencies are built.
