# Empty compiler generated dependencies file for fig1_immutable_ratio.
# This may be replaced when dependencies are built.
