file(REMOVE_RECURSE
  "CMakeFiles/fig1_immutable_ratio.dir/fig1_immutable_ratio.cpp.o"
  "CMakeFiles/fig1_immutable_ratio.dir/fig1_immutable_ratio.cpp.o.d"
  "fig1_immutable_ratio"
  "fig1_immutable_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_immutable_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
