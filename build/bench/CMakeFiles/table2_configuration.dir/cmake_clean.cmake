file(REMOVE_RECURSE
  "CMakeFiles/table2_configuration.dir/table2_configuration.cpp.o"
  "CMakeFiles/table2_configuration.dir/table2_configuration.cpp.o.d"
  "table2_configuration"
  "table2_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
