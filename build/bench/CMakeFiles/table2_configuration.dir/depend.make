# Empty dependencies file for table2_configuration.
# This may be replaced when dependencies are built.
