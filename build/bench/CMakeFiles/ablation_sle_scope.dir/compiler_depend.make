# Empty compiler generated dependencies file for ablation_sle_scope.
# This may be replaced when dependencies are built.
