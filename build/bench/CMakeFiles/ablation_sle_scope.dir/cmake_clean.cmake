file(REMOVE_RECURSE
  "CMakeFiles/ablation_sle_scope.dir/ablation_sle_scope.cpp.o"
  "CMakeFiles/ablation_sle_scope.dir/ablation_sle_scope.cpp.o.d"
  "ablation_sle_scope"
  "ablation_sle_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sle_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
