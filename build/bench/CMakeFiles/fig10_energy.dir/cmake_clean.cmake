file(REMOVE_RECURSE
  "CMakeFiles/fig10_energy.dir/fig10_energy.cpp.o"
  "CMakeFiles/fig10_energy.dir/fig10_energy.cpp.o.d"
  "fig10_energy"
  "fig10_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
