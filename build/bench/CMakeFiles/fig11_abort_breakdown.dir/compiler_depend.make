# Empty compiler generated dependencies file for fig11_abort_breakdown.
# This may be replaced when dependencies are built.
