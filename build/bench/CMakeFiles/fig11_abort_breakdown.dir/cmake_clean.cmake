file(REMOVE_RECURSE
  "CMakeFiles/fig11_abort_breakdown.dir/fig11_abort_breakdown.cpp.o"
  "CMakeFiles/fig11_abort_breakdown.dir/fig11_abort_breakdown.cpp.o.d"
  "fig11_abort_breakdown"
  "fig11_abort_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_abort_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
