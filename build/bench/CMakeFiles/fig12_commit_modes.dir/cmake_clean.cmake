file(REMOVE_RECURSE
  "CMakeFiles/fig12_commit_modes.dir/fig12_commit_modes.cpp.o"
  "CMakeFiles/fig12_commit_modes.dir/fig12_commit_modes.cpp.o.d"
  "fig12_commit_modes"
  "fig12_commit_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_commit_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
