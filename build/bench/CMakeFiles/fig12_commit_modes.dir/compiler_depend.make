# Empty compiler generated dependencies file for fig12_commit_modes.
# This may be replaced when dependencies are built.
