# Empty dependencies file for ablation_scl_policy.
# This may be replaced when dependencies are built.
