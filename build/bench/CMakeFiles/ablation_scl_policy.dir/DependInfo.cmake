
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_scl_policy.cpp" "bench/CMakeFiles/ablation_scl_policy.dir/ablation_scl_policy.cpp.o" "gcc" "bench/CMakeFiles/ablation_scl_policy.dir/ablation_scl_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/clearsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/clearsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/clearsim_clear.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/clearsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/clearsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/clearsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/clearsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/clearsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/clearsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
