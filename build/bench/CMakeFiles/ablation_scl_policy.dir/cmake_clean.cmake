file(REMOVE_RECURSE
  "CMakeFiles/ablation_scl_policy.dir/ablation_scl_policy.cpp.o"
  "CMakeFiles/ablation_scl_policy.dir/ablation_scl_policy.cpp.o.d"
  "ablation_scl_policy"
  "ablation_scl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
