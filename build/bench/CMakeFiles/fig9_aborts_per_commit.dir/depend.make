# Empty dependencies file for fig9_aborts_per_commit.
# This may be replaced when dependencies are built.
