file(REMOVE_RECURSE
  "CMakeFiles/fig9_aborts_per_commit.dir/fig9_aborts_per_commit.cpp.o"
  "CMakeFiles/fig9_aborts_per_commit.dir/fig9_aborts_per_commit.cpp.o.d"
  "fig9_aborts_per_commit"
  "fig9_aborts_per_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_aborts_per_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
