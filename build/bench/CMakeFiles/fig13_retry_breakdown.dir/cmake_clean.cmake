file(REMOVE_RECURSE
  "CMakeFiles/fig13_retry_breakdown.dir/fig13_retry_breakdown.cpp.o"
  "CMakeFiles/fig13_retry_breakdown.dir/fig13_retry_breakdown.cpp.o.d"
  "fig13_retry_breakdown"
  "fig13_retry_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_retry_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
