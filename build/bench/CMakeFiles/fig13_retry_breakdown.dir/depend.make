# Empty dependencies file for fig13_retry_breakdown.
# This may be replaced when dependencies are built.
