file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/alt_test.cc.o"
  "CMakeFiles/core_tests.dir/core/alt_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/clear_behavior_test.cc.o"
  "CMakeFiles/core_tests.dir/core/clear_behavior_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/crt_test.cc.o"
  "CMakeFiles/core_tests.dir/core/crt_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/ert_test.cc.o"
  "CMakeFiles/core_tests.dir/core/ert_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/executor_test.cc.o"
  "CMakeFiles/core_tests.dir/core/executor_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/sle_scope_test.cc.o"
  "CMakeFiles/core_tests.dir/core/sle_scope_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/trace_test.cc.o"
  "CMakeFiles/core_tests.dir/core/trace_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
