file(REMOVE_RECURSE
  "CMakeFiles/harness_tests.dir/harness/csv_export_test.cc.o"
  "CMakeFiles/harness_tests.dir/harness/csv_export_test.cc.o.d"
  "CMakeFiles/harness_tests.dir/harness/harness_test.cc.o"
  "CMakeFiles/harness_tests.dir/harness/harness_test.cc.o.d"
  "CMakeFiles/harness_tests.dir/metrics/metrics_test.cc.o"
  "CMakeFiles/harness_tests.dir/metrics/metrics_test.cc.o.d"
  "CMakeFiles/harness_tests.dir/metrics/stats_report_test.cc.o"
  "CMakeFiles/harness_tests.dir/metrics/stats_report_test.cc.o.d"
  "harness_tests"
  "harness_tests.pdb"
  "harness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
