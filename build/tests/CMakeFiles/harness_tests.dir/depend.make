# Empty dependencies file for harness_tests.
# This may be replaced when dependencies are built.
