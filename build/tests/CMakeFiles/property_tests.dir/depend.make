# Empty dependencies file for property_tests.
# This may be replaced when dependencies are built.
