file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/atomicity_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/atomicity_property_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/lock_protocol_test.cc.o"
  "CMakeFiles/property_tests.dir/property/lock_protocol_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/random_region_fuzz_test.cc.o"
  "CMakeFiles/property_tests.dir/property/random_region_fuzz_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/substrate_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/substrate_property_test.cc.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
