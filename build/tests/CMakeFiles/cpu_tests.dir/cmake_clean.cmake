file(REMOVE_RECURSE
  "CMakeFiles/cpu_tests.dir/cpu/core_resources_test.cc.o"
  "CMakeFiles/cpu_tests.dir/cpu/core_resources_test.cc.o.d"
  "CMakeFiles/cpu_tests.dir/cpu/tx_value_test.cc.o"
  "CMakeFiles/cpu_tests.dir/cpu/tx_value_test.cc.o.d"
  "cpu_tests"
  "cpu_tests.pdb"
  "cpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
