# Empty dependencies file for cpu_tests.
# This may be replaced when dependencies are built.
