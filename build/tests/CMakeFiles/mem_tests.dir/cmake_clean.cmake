file(REMOVE_RECURSE
  "CMakeFiles/mem_tests.dir/mem/backing_store_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/backing_store_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/cache_model_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/cache_model_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/directory_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/directory_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/lock_manager_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/lock_manager_test.cc.o.d"
  "CMakeFiles/mem_tests.dir/mem/memory_system_test.cc.o"
  "CMakeFiles/mem_tests.dir/mem/memory_system_test.cc.o.d"
  "mem_tests"
  "mem_tests.pdb"
  "mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
