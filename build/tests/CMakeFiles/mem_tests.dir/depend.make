# Empty dependencies file for mem_tests.
# This may be replaced when dependencies are built.
