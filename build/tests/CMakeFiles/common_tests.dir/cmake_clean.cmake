file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/config_test.cc.o"
  "CMakeFiles/common_tests.dir/common/config_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/stats_test.cc.o"
  "CMakeFiles/common_tests.dir/common/stats_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
