# Empty dependencies file for htm_tests.
# This may be replaced when dependencies are built.
