file(REMOVE_RECURSE
  "CMakeFiles/htm_tests.dir/htm/conflict_manager_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/conflict_manager_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/fallback_lock_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/fallback_lock_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/footprint_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/footprint_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/htm_types_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/htm_types_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/power_token_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/power_token_test.cc.o.d"
  "CMakeFiles/htm_tests.dir/htm/tx_context_test.cc.o"
  "CMakeFiles/htm_tests.dir/htm/tx_context_test.cc.o.d"
  "htm_tests"
  "htm_tests.pdb"
  "htm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
