/**
 * @file
 * clearsimd: the clearsim experiment daemon.
 *
 * Listens on an AF_UNIX socket and serves run/sweep/analyze jobs
 * over the clearsimd-wire-v1 protocol, with request deduplication
 * (in-flight, in-memory and on-disk), incremental result streaming
 * to any number of clients, and a persistent dead-letter queue for
 * failed points. docs/SERVICE.md documents the protocol; talk to
 * it with clearsim_client.
 *
 *   clearsimd --socket /tmp/clearsimd.sock --cache sweeps.csv \
 *             --dlq dead_letters.jsonl --jobs 8
 *
 * The daemon runs in the foreground until SIGINT/SIGTERM; results
 * it computes are byte-identical to clearsim_cli producing the
 * same experiment locally.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/env.hh"
#include "common/log.hh"
#include "service/daemon.hh"

using namespace clearsim;

namespace
{

Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    // async-signal-safe enough for a test daemon: stop() only
    // touches sockets and threads, and is idempotent.
    if (g_daemon)
        g_daemon->stop();
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsimd [options]\n"
        "  --socket <path>  AF_UNIX socket (default clearsimd.sock)\n"
        "  --cache <path>   sweep cache CSV (default: CLEARSIM_CACHE\n"
        "                   or ./clearsim_sweep_cache.csv)\n"
        "  --dlq <path>     dead-letter queue JSONL\n"
        "                   (default clearsimd_dlq.jsonl)\n"
        "  --jobs <n>       worker threads per job (default: all\n"
        "                   hardware threads)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Daemon::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--cache") {
            options.scheduler.cachePath = value();
        } else if (arg == "--dlq") {
            options.scheduler.dlqPath = value();
        } else if (arg == "--jobs") {
            options.scheduler.jobs =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--jobs", 0, 4096));
        } else {
            usage();
        }
    }

    Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    logStatus("[clearsimd] listening on %s",
              daemon.socketPath().c_str());
    daemon.wait();
    logStatus("[clearsimd] shut down");
    return 0;
}
