/**
 * @file
 * clearsimd: the clearsim experiment daemon.
 *
 * Listens on an AF_UNIX socket and serves run/sweep/analyze jobs
 * over the clearsimd-wire-v1 protocol, with request deduplication
 * (in-flight, in-memory and on-disk), incremental result streaming
 * to any number of clients, and a persistent dead-letter queue for
 * failed points. docs/SERVICE.md documents the protocol; talk to
 * it with clearsim_client.
 *
 *   clearsimd --socket /tmp/clearsimd.sock --cache sweeps.csv \
 *             --dlq dead_letters.jsonl --jobs 8
 *
 * The daemon runs in the foreground until SIGINT/SIGTERM; results
 * it computes are byte-identical to clearsim_cli producing the
 * same experiment locally.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "common/env.hh"
#include "common/log.hh"
#include "service/daemon.hh"

using namespace clearsim;

namespace
{

int g_signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    // Only async-signal-safe work here. Daemon::stop() waits on
    // the same condition variable the main thread is parked on, so
    // calling it from a handler that interrupted that wait nests
    // two waits on one condvar from one thread — with live worker
    // connections at shutdown, that wedges the process. The
    // handler just pokes the self-pipe; main runs stop().
    const char byte = 1;
    while (::write(g_signalPipe[1], &byte, 1) < 0 && errno == EINTR)
        continue;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsimd [options]\n"
        "  --socket <path>  AF_UNIX socket (default clearsimd.sock)\n"
        "  --cache <path>   sweep cache CSV (default: CLEARSIM_CACHE\n"
        "                   or ./clearsim_sweep_cache.csv)\n"
        "  --dlq <path>     dead-letter queue JSONL\n"
        "                   (default clearsimd_dlq.jsonl)\n"
        "  --jobs <n>       worker threads per job (default: all\n"
        "                   hardware threads)\n"
        "  --lease-ttl <ms> fabric lease time-to-live\n"
        "                   (default 5000)\n"
        "  --shard-retries <n>  attempts per shard before it is\n"
        "                   dead-lettered (default 3)\n"
        "  --shards <n>     default fabric shard count when the\n"
        "                   request leaves it 0 (0 = per cell)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Daemon::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--cache") {
            options.scheduler.cachePath = value();
        } else if (arg == "--dlq") {
            options.scheduler.dlqPath = value();
        } else if (arg == "--jobs") {
            options.scheduler.jobs =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--jobs", 0, 4096));
        } else if (arg == "--lease-ttl") {
            options.scheduler.fabric.leaseTtlMs =
                parseUnsignedOrDie(value().c_str(), "--lease-ttl",
                                   1, 3600000);
        } else if (arg == "--shard-retries") {
            options.scheduler.fabric.shardRetryBudget =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--shard-retries", 1, 1000));
        } else if (arg == "--shards") {
            options.scheduler.fabric.shards =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--shards", 0, 1000000));
        } else {
            usage();
        }
    }

    if (::pipe(g_signalPipe) != 0)
        fatal("clearsimd: pipe(): %s", std::strerror(errno));

    Daemon daemon(options);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    logStatus("[clearsimd] listening on %s",
              daemon.socketPath().c_str());
    char byte = 0;
    while (::read(g_signalPipe[0], &byte, 1) < 0 && errno == EINTR)
        continue;
    daemon.stop();
    logStatus("[clearsimd] shut down");
    return 0;
}
