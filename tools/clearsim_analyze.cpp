/**
 * @file
 * clearsim_analyze: the ahead-of-run region analyzer CLI.
 *
 * Performs a capture run per (workload, config) pair, runs the
 * static analysis passes, and prints a verdict table and/or writes
 * the clearsim-analysis-v1 JSON document:
 *
 *   clearsim_analyze --workload bitcoin --config C
 *   clearsim_analyze --workload all --config C --json verdicts.json
 *   clearsim_analyze --workload bst,hashmap --seed 7 --ops 16
 *
 * The JSON output is byte-stable: identical inputs always produce
 * identical bytes, across runs and regardless of CLEARSIM_JOBS.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"
#include "common/env.hh"
#include "common/log.hh"

using namespace clearsim;

namespace
{

struct AnalyzeOptions
{
    std::vector<std::string> workloads = {"bitcoin"};
    std::vector<std::string> configs = {"C"};
    unsigned ops = 32;
    unsigned threads = 32;
    unsigned retries = 4;
    unsigned scale = 1;
    std::uint64_t seed = 42;
    std::string jsonPath;
    bool quiet = false;
};

std::vector<std::string>
splitCsvList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_analyze [options]\n"
        "  --workload <name[,name...]|all>  (default bitcoin)\n"
        "  --config <spec[,spec...]>        (default C)\n"
        "                   spec = preset[+modifier...][:key=value...]\n"
        "  --ops <n>        AR invocations per thread (default 32)\n"
        "  --threads <n>    simulated threads (default 32)\n"
        "  --retries <n>    retry limit before fallback (default 4)\n"
        "  --scale <n>      data-structure scale factor (default 1)\n"
        "  --seed <n>       master seed (default 42)\n"
        "  --json <file>    write clearsim-analysis-v1 JSON to <file>\n"
        "  --quiet          suppress the verdict table\n");
    std::exit(2);
}

AnalyzeOptions
parseArgs(int argc, char **argv)
{
    AnalyzeOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            const std::string v = value();
            opts.workloads =
                v == "all" ? workloadNames() : splitCsvList(v);
        } else if (arg == "--config") {
            opts.configs = splitCsvList(value());
        } else if (arg == "--ops") {
            opts.ops = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--ops", 1, 100000000));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--threads", 1, 4096));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--retries", 0, 1000000));
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--scale", 1, 1000000));
        } else if (arg == "--seed") {
            opts.seed = parseUnsignedOrDie(
                value().c_str(), "--seed", 0,
                std::numeric_limits<std::uint64_t>::max());
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            usage();
        }
    }
    return opts;
}

void
validateSelections(const AnalyzeOptions &opts)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const std::string &spec : opts.configs) {
        SystemConfig cfg;
        std::string error;
        if (!reg.tryMake(spec, cfg, error)) {
            std::fprintf(stderr,
                         "clearsim_analyze: --config %s: %s\n",
                         spec.c_str(), error.c_str());
            std::exit(2);
        }
    }
    const std::vector<std::string> known = workloadNames();
    for (const std::string &w : opts.workloads) {
        if (std::find(known.begin(), known.end(), w) ==
            known.end()) {
            std::fprintf(stderr,
                         "clearsim_analyze: unknown workload '%s'\n",
                         w.c_str());
            std::exit(2);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const AnalyzeOptions opts = parseArgs(argc, argv);
    validateSelections(opts);

    std::vector<AnalysisResult> analyses;
    for (const std::string &workload : opts.workloads) {
        for (const std::string &config : opts.configs) {
            AnalyzeRequest request;
            request.config = config;
            request.workload = workload;
            request.maxRetries = opts.retries;
            request.params.threads = opts.threads;
            request.params.opsPerThread = opts.ops;
            request.params.scale = opts.scale;
            request.params.seed = opts.seed;

            AnalyzeOutcome outcome = analyzeWorkload(request);
            if (!opts.quiet)
                writeAnalysisTable(std::cout, outcome.analysis);
            analyses.push_back(std::move(outcome.analysis));
        }
    }

    if (!opts.jsonPath.empty()) {
        std::string error;
        if (!writeAnalysisJson(opts.jsonPath, analyses, error))
            fatal("--json: %s", error.c_str());
        logStatus("[clearsim] wrote %llu analyses to %s",
                  static_cast<unsigned long long>(analyses.size()),
                  opts.jsonPath.c_str());
    }
    return 0;
}
