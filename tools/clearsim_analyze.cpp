/**
 * @file
 * clearsim_analyze: the ahead-of-run region analyzer CLI.
 *
 * Performs a capture run per (workload, config) pair, runs the
 * static analysis passes, and prints a verdict table and/or writes
 * the clearsim-analysis-v1 JSON document:
 *
 *   clearsim_analyze --workload bitcoin --config C
 *   clearsim_analyze --workload all --config C --json verdicts.json
 *   clearsim_analyze --workload bst,hashmap --seed 7 --ops 16
 *
 * The JSON output is byte-stable: identical inputs always produce
 * identical bytes, across runs and regardless of CLEARSIM_JOBS.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"
#include "common/env.hh"
#include "common/log.hh"

using namespace clearsim;

namespace
{

struct AnalyzeOptions
{
    std::vector<std::string> workloads = {"bitcoin"};
    std::vector<std::string> configs = {"C"};
    unsigned ops = 32;
    unsigned threads = 32;
    unsigned retries = 4;
    unsigned scale = 1;
    std::uint64_t seed = 42;
    std::string jsonPath;
    std::string certJsonPath;
    bool quiet = false;

    /**
     * --fail-on <verdict>: exit 3 when any region's verdict is at
     * least as severe, so CI can gate on "no region regressed past
     * LOCK-ORDER-RISK" without parsing the JSON.
     */
    bool failOnGiven = false;
    Verdict failOn = Verdict::Eligible;
};

/**
 * Gate severity of a verdict. Orders the enum for --fail-on:
 * ELIGIBLE (0) < LOCK-ORDER-RISK (1) < UNBOUNDED-INDIRECTION (2) <
 * CAPACITY-DOOMED (3). Distinct from the wire class index, which is
 * pinned to the enum's declaration order.
 */
unsigned
verdictSeverity(Verdict verdict)
{
    switch (verdict) {
    case Verdict::Eligible:
        return 0;
    case Verdict::LockOrderRisk:
        return 1;
    case Verdict::UnboundedIndirection:
        return 2;
    case Verdict::CapacityDoomed:
        return 3;
    }
    return 3;
}

bool
parseVerdict(const std::string &text, Verdict &out)
{
    for (unsigned i = 0; i < kNumVerdictClasses; ++i) {
        const Verdict v = verdictOfClass(i);
        const char *name = verdictName(v);
        if (text.size() != std::strlen(name))
            continue;
        bool match = true;
        for (std::size_t j = 0; j < text.size(); ++j) {
            if (std::toupper(static_cast<unsigned char>(text[j])) !=
                name[j]) {
                match = false;
                break;
            }
        }
        if (match) {
            out = v;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
splitCsvList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_analyze [options]\n"
        "  --workload <name[,name...]|all>  (default bitcoin)\n"
        "  --config <spec[,spec...]>        (default C)\n"
        "                   spec = preset[+modifier...][:key=value...]\n"
        "  --ops <n>        AR invocations per thread (default 32)\n"
        "  --threads <n>    simulated threads (default 32)\n"
        "  --retries <n>    retry limit before fallback (default 4)\n"
        "  --scale <n>      data-structure scale factor (default 1)\n"
        "  --seed <n>       master seed (default 42)\n"
        "  --json <file>    write clearsim-analysis-v1 JSON to <file>\n"
        "  --cert-json <file>  write clearsim-cert-v1 eligibility\n"
        "                   certificates to <file>\n"
        "  --fail-on <verdict>  exit 3 when any region's verdict is\n"
        "                   at least as severe (severity order:\n"
        "                   ELIGIBLE < LOCK-ORDER-RISK <\n"
        "                   UNBOUNDED-INDIRECTION < CAPACITY-DOOMED)\n"
        "  --quiet          suppress the verdict table\n");
    std::exit(2);
}

AnalyzeOptions
parseArgs(int argc, char **argv)
{
    AnalyzeOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            const std::string v = value();
            opts.workloads =
                v == "all" ? workloadNames() : splitCsvList(v);
        } else if (arg == "--config") {
            opts.configs = splitCsvList(value());
        } else if (arg == "--ops") {
            opts.ops = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--ops", 1, 100000000));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--threads", 1, 4096));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--retries", 0, 1000000));
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--scale", 1, 1000000));
        } else if (arg == "--seed") {
            opts.seed = parseUnsignedOrDie(
                value().c_str(), "--seed", 0,
                std::numeric_limits<std::uint64_t>::max());
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--cert-json") {
            opts.certJsonPath = value();
        } else if (arg == "--fail-on") {
            const std::string v = value();
            if (!parseVerdict(v, opts.failOn)) {
                std::fprintf(stderr,
                             "clearsim_analyze: --fail-on: unknown "
                             "verdict '%s' (known: ELIGIBLE, "
                             "LOCK-ORDER-RISK, "
                             "UNBOUNDED-INDIRECTION, "
                             "CAPACITY-DOOMED)\n",
                             v.c_str());
                std::exit(2);
            }
            opts.failOnGiven = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            usage();
        }
    }
    return opts;
}

void
validateSelections(const AnalyzeOptions &opts)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const std::string &spec : opts.configs) {
        SystemConfig cfg;
        std::string error;
        if (!reg.tryMake(spec, cfg, error)) {
            std::fprintf(stderr,
                         "clearsim_analyze: --config %s: %s\n",
                         spec.c_str(), error.c_str());
            std::exit(2);
        }
    }
    const std::vector<std::string> known = workloadNames();
    for (const std::string &w : opts.workloads) {
        if (std::find(known.begin(), known.end(), w) ==
            known.end()) {
            std::fprintf(stderr,
                         "clearsim_analyze: unknown workload '%s'\n",
                         w.c_str());
            std::exit(2);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const AnalyzeOptions opts = parseArgs(argc, argv);
    validateSelections(opts);

    std::vector<AnalysisResult> analyses;
    std::vector<CertificateSet> certs;
    std::uint64_t gatedRegions = 0;
    for (const std::string &workload : opts.workloads) {
        for (const std::string &config : opts.configs) {
            AnalyzeRequest request;
            request.config = config;
            request.workload = workload;
            request.maxRetries = opts.retries;
            request.params.threads = opts.threads;
            request.params.opsPerThread = opts.ops;
            request.params.scale = opts.scale;
            request.params.seed = opts.seed;

            AnalyzeOutcome outcome = analyzeWorkload(request);
            if (!opts.quiet)
                writeAnalysisTable(std::cout, outcome.analysis);
            if (opts.failOnGiven) {
                for (const RegionAnalysis &region :
                     outcome.analysis.regions) {
                    if (verdictSeverity(region.verdict) <
                        verdictSeverity(opts.failOn))
                        continue;
                    ++gatedRegions;
                    std::fprintf(
                        stderr,
                        "clearsim_analyze: --fail-on: region "
                        "0x%llx in %s [%s] is %s\n",
                        static_cast<unsigned long long>(region.pc),
                        workload.c_str(), config.c_str(),
                        verdictName(region.verdict));
                }
            }
            if (!opts.certJsonPath.empty())
                certs.push_back(buildCertificates(
                    outcome.analysis, outcome.config));
            analyses.push_back(std::move(outcome.analysis));
        }
    }

    if (!opts.jsonPath.empty()) {
        std::string error;
        if (!writeAnalysisJson(opts.jsonPath, analyses, error))
            fatal("--json: %s", error.c_str());
        logStatus("[clearsim] wrote %llu analyses to %s",
                  static_cast<unsigned long long>(analyses.size()),
                  opts.jsonPath.c_str());
    }
    if (!opts.certJsonPath.empty()) {
        std::string error;
        if (!writeCertJson(opts.certJsonPath, certs, error))
            fatal("--cert-json: %s", error.c_str());
        logStatus("[clearsim] wrote %llu certificate sets to %s",
                  static_cast<unsigned long long>(certs.size()),
                  opts.certJsonPath.c_str());
    }
    if (gatedRegions != 0) {
        std::fprintf(stderr,
                     "clearsim_analyze: %llu region(s) at or above "
                     "--fail-on %s\n",
                     static_cast<unsigned long long>(gatedRegions),
                     verdictName(opts.failOn));
        return 3;
    }
    return 0;
}
