/**
 * @file
 * clearsim_audit: the sweep-scale mispredict audit CLI.
 *
 * Runs the certifying analyzer's audit grid (see harness/audit.hh):
 * per (config, workload, retry-limit) unit it derives eligibility
 * certificates from one capture pass, replays seeded measured runs
 * with a CertChecker tapping the trace stream, and reduces
 * everything into a per-verdict-class precision/recall table plus a
 * replayable mispredict corpus:
 *
 *   clearsim_audit --workload all --config C --retries 1,4
 *   clearsim_audit --workload queue --json audit.json
 *   clearsim_audit --workload bst --replay
 *
 * Unlike `clearsim_cli --audit` (whose grid comes from the
 * CLEARSIM_* environment so daemon and CLI runs compare
 * byte-for-byte), this tool takes the grid from flags. --replay
 * re-runs every corpus entry from its repro string and exits
 * nonzero unless each replay reproduces the identical mispredict
 * record.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"
#include "common/env.hh"
#include "common/log.hh"

using namespace clearsim;

namespace
{

struct AuditCliOptions
{
    AuditOptions audit;
    std::string jsonPath;
    bool quiet = false;
    bool replay = false;
};

std::vector<std::string>
splitCsvList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_audit [options]\n"
        "  --workload <name[,name...]|all>  (default all)\n"
        "  --config <spec[,spec...]>        (default C)\n"
        "                   spec = preset[+modifier...][:key=value...]\n"
        "  --retries <n[,n...]>  audited retry limits (default 1,4)\n"
        "  --seeds <n>      audited runs per unit (default 2)\n"
        "  --ops <n>        AR invocations per thread (default 16)\n"
        "  --threads <n>    simulated threads (default 32)\n"
        "  --scale <n>      data-structure scale factor (default 1)\n"
        "  --seed <n>       base seed (default 1)\n"
        "  --jobs <n>       worker threads (0 = hardware; never\n"
        "                   affects the result bytes)\n"
        "  --json <file>    write clearsim-audit-v1 JSON to <file>\n"
        "  --replay         re-run every mispredict from its repro\n"
        "                   string; exit 1 unless all records\n"
        "                   reproduce byte-identically\n"
        "  --quiet          suppress the text report\n");
    std::exit(2);
}

AuditCliOptions
parseArgs(int argc, char **argv)
{
    AuditCliOptions opts;
    opts.audit.workloads = workloadNames();
    opts.audit.params.opsPerThread = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            const std::string v = value();
            opts.audit.workloads =
                v == "all" ? workloadNames() : splitCsvList(v);
        } else if (arg == "--config") {
            opts.audit.configs = splitCsvList(value());
        } else if (arg == "--retries") {
            opts.audit.retryLimits.clear();
            for (const std::string &r : splitCsvList(value()))
                opts.audit.retryLimits.push_back(
                    static_cast<unsigned>(parseUnsignedOrDie(
                        r.c_str(), "--retries", 0, 1000000)));
            if (opts.audit.retryLimits.empty())
                usage();
        } else if (arg == "--seeds") {
            opts.audit.seeds =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--seeds", 1, 100000));
        } else if (arg == "--ops") {
            opts.audit.params.opsPerThread =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--ops", 1, 100000000));
        } else if (arg == "--threads") {
            opts.audit.params.threads =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--threads", 1, 4096));
        } else if (arg == "--scale") {
            opts.audit.params.scale =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--scale", 1, 1000000));
        } else if (arg == "--seed") {
            opts.audit.params.seed = parseUnsignedOrDie(
                value().c_str(), "--seed", 0,
                std::numeric_limits<std::uint64_t>::max());
        } else if (arg == "--jobs") {
            opts.audit.jobs =
                static_cast<unsigned>(parseUnsignedOrDie(
                    value().c_str(), "--jobs", 0, 1024));
        } else if (arg == "--json") {
            opts.jsonPath = value();
        } else if (arg == "--replay") {
            opts.replay = true;
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            usage();
        }
    }
    return opts;
}

void
validateSelections(const AuditCliOptions &opts)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const std::string &spec : opts.audit.configs) {
        SystemConfig cfg;
        std::string error;
        if (!reg.tryMake(spec, cfg, error)) {
            std::fprintf(stderr,
                         "clearsim_audit: --config %s: %s\n",
                         spec.c_str(), error.c_str());
            std::exit(2);
        }
    }
    const std::vector<std::string> known = workloadNames();
    for (const std::string &w : opts.audit.workloads) {
        if (std::find(known.begin(), known.end(), w) ==
            known.end()) {
            std::fprintf(stderr,
                         "clearsim_audit: unknown workload '%s'\n",
                         w.c_str());
            std::exit(2);
        }
    }
}

/**
 * Replay the whole corpus. Every mispredict carries a repro string;
 * the audit's claim is that each replays to a byte-identical record.
 * @return the number of entries that failed to reproduce
 */
unsigned
replayCorpus(const AuditResult &result)
{
    unsigned mismatches = 0;
    for (const AuditMispredict &entry : result.mispredicts) {
        Mispredict replayed;
        std::string error;
        if (replayMispredict(entry, result.options.params.seed,
                             replayed, error)) {
            continue;
        }
        ++mismatches;
        std::fprintf(stderr,
                     "clearsim_audit: replay mismatch: %s "
                     "pc=0x%llx premise=%s: %s\n",
                     mispredictKindName(entry.record.kind),
                     static_cast<unsigned long long>(
                         entry.record.pc),
                     premiseName(entry.record.premise),
                     error.c_str());
        std::fprintf(stderr, "  repro: %s\n",
                     entry.record.repro.c_str());
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    const AuditCliOptions opts = parseArgs(argc, argv);
    validateSelections(opts);

    const AuditResult result = runAudit(opts.audit);
    if (!opts.quiet)
        std::fputs(auditReport(result).c_str(), stdout);

    if (!opts.jsonPath.empty()) {
        std::string error;
        if (!writeAuditJson(opts.jsonPath, result, error))
            fatal("--json: %s", error.c_str());
        logStatus("[clearsim] wrote audit of %llu runs to %s",
                  static_cast<unsigned long long>(result.runs),
                  opts.jsonPath.c_str());
    }

    int exitCode = 0;
    if (opts.replay) {
        const unsigned mismatches = replayCorpus(result);
        logStatus("[clearsim] replayed %llu mispredict(s), "
                  "%u mismatch(es)",
                  static_cast<unsigned long long>(
                      result.mispredicts.size()),
                  mismatches);
        if (mismatches != 0)
            exitCode = 1;
    }
    if (!result.failures.empty()) {
        std::fprintf(stderr,
                     "clearsim_audit: %llu audit unit(s) failed\n",
                     static_cast<unsigned long long>(
                         result.failures.size()));
        exitCode = 1;
    }
    return exitCode;
}
