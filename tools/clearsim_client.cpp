/**
 * @file
 * clearsim_client: command-line client for clearsimd.
 *
 *   clearsim_client --socket S catalogue
 *   clearsim_client --socket S run --workload genome --config C
 *   clearsim_client --socket S sweep --configs B,C \
 *       --workloads genome,bst --retries 1,2,4 --out sweep.csv
 *   clearsim_client --socket S fabric-sweep --shards 4 ...
 *   clearsim_client --socket S fabric-status   (alias: workers)
 *   clearsim_client --socket S status [--id <job>]
 *   clearsim_client --socket S cancel --id <job>
 *   clearsim_client --socket S dlq-list | dlq-replay | dlq-clear
 *
 * Streams progress and cells to stderr while the job runs, writes
 * the terminal payload to --out (default stdout), and exits 0 on
 * success, 3 when the job failed or the daemon aborted it while
 * shutting down, 4 when it was cancelled.
 *
 * The sweep payload is the sweep-cache CSV, byte-identical to what
 * clearsim_cli --sweep produces locally for the same options —
 * `cmp` is the whole verification story.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "service/client.hh"

using namespace clearsim;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_client [--socket <path>] <command> "
        "[options]\n"
        "commands:\n"
        "  catalogue        config/workload discovery document\n"
        "  run              one simulation (--workload required)\n"
        "  analyze          ahead-of-run analysis (--workload req.)\n"
        "  sweep            a (configs x workloads) sweep\n"
        "  fabric-sweep     the same sweep, sharded over\n"
        "                   clearsim_worker processes\n"
        "  audit            certifying-analyzer mispredict audit\n"
        "  status           job table (all jobs, or --id <job>)\n"
        "  fabric-status    fabric coordinator state (workers,\n"
        "                   shard/lease counters)\n"
        "  workers          alias of fabric-status\n"
        "  cancel           cancel an in-flight job (--id <job>)\n"
        "  dlq-list         dead-letter queue contents\n"
        "  dlq-replay       re-execute every dead-lettered point\n"
        "  dlq-clear        drop every dead-letter entry\n"
        "options:\n"
        "  --socket <path>  daemon socket (default clearsimd.sock)\n"
        "  --retry-connect <n>  connect attempts with jittered\n"
        "                   backoff (default 1 = no retry)\n"
        "  --out <file>     write the result payload to <file>\n"
        "  --tag <text>     request tag echoed in acks/errors\n"
        "  --quiet          no progress/cell streaming to stderr\n"
        "run/analyze:  --config <spec> --workload <name>\n"
        "              --retries --threads --ops --scale --seed <n>\n"
        "sweep:        --configs a,b --workloads a,b --retries 1,2\n"
        "              --seeds --trim --ops --threads --scale\n"
        "              --jobs <n>\n"
        "fabric-sweep: sweep options plus --shards <n>\n"
        "              (0 = one shard per cell)\n"
        "audit:        --configs a,b --workloads a,b --retries 1,4\n"
        "              --seeds --ops --threads --scale --seed\n"
        "              --jobs <n>\n");
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct ClientOptions
{
    std::string socket = "clearsimd.sock";
    std::string command;
    std::string out;
    std::string tag;
    std::string id;
    bool quiet = false;

    std::string config;
    std::string workload;
    std::vector<std::string> configs;
    std::vector<std::string> workloads;
    std::vector<std::uint64_t> retriesList;
    bool haveRetries = false;
    std::uint64_t retries = 0, threads = 0, ops = 0, scale = 0,
                  seed = 0, seeds = 0, trim = 0, jobs = 0,
                  shards = 0;
    bool haveThreads = false, haveOps = false, haveScale = false,
         haveSeed = false, haveSeeds = false, haveTrim = false,
         haveJobs = false, haveShards = false;
    std::uint64_t retryConnect = 1;
};

/** The wire command behind a CLI command name. */
std::string
wireCommand(const std::string &command)
{
    return command == "workers" ? "fabric-status" : command;
}

/** True when the command needs the v2 (fabric) schema. */
bool
needsV2(const std::string &command)
{
    const std::string wire = wireCommand(command);
    return wire == "fabric-sweep" || wire == "fabric-status";
}

/** Build the request payload for the parsed command. */
std::string
buildRequest(const ClientOptions &opts)
{
    std::string out;
    JsonWriter w(out);
    w.beginObject();
    w.key("schema");
    w.value(needsV2(opts.command) ? kWireSchemaV2 : kWireSchema);
    w.key("type");
    w.value(wireCommand(opts.command));
    if (!opts.tag.empty()) {
        w.key("tag");
        w.value(opts.tag);
    }
    const bool sweep_like = opts.command == "sweep" ||
                            opts.command == "fabric-sweep" ||
                            opts.command == "audit";
    if (opts.command == "run" || opts.command == "analyze") {
        if (!opts.config.empty()) {
            w.key("config");
            w.value(opts.config);
        }
        w.key("workload");
        w.value(opts.workload);
        if (opts.haveRetries) {
            w.key("retries");
            w.value(opts.retries);
        }
        if (opts.haveThreads) {
            w.key("threads");
            w.value(opts.threads);
        }
        if (opts.haveOps) {
            w.key("ops");
            w.value(opts.ops);
        }
        if (opts.haveScale) {
            w.key("scale");
            w.value(opts.scale);
        }
        if (opts.haveSeed) {
            w.key("seed");
            w.value(opts.seed);
        }
    } else if (sweep_like) {
        if (!opts.configs.empty()) {
            w.key("configs");
            w.beginArray();
            for (const std::string &spec : opts.configs)
                w.value(spec);
            w.endArray();
        }
        if (!opts.workloads.empty()) {
            w.key("workloads");
            w.beginArray();
            for (const std::string &name : opts.workloads)
                w.value(name);
            w.endArray();
        }
        if (opts.haveRetries) {
            w.key("retries");
            w.beginArray();
            for (std::uint64_t limit : opts.retriesList)
                w.value(limit);
            w.endArray();
        }
        if (opts.haveSeeds) {
            w.key("seeds");
            w.value(opts.seeds);
        }
        // trim is sweep-only and seed audit-only; the protocol
        // fails closed on unknown fields, so send each only where
        // its schema lists it.
        if (opts.haveTrim && opts.command != "audit") {
            w.key("trim");
            w.value(opts.trim);
        }
        if (opts.haveSeed && opts.command == "audit") {
            w.key("seed");
            w.value(opts.seed);
        }
        if (opts.haveOps) {
            w.key("ops");
            w.value(opts.ops);
        }
        if (opts.haveThreads) {
            w.key("threads");
            w.value(opts.threads);
        }
        if (opts.haveScale) {
            w.key("scale");
            w.value(opts.scale);
        }
        if (opts.haveJobs) {
            w.key("jobs");
            w.value(opts.jobs);
        }
        if (opts.haveShards && opts.command == "fabric-sweep") {
            w.key("shards");
            w.value(opts.shards);
        }
    } else if (opts.command == "status" ||
               opts.command == "cancel") {
        if (!opts.id.empty()) {
            w.key("id");
            w.value(opts.id);
        }
    }
    w.endObject();
    return out;
}

void
writePayload(const ClientOptions &opts, const std::string &payload)
{
    if (opts.out.empty()) {
        std::fwrite(payload.data(), 1, payload.size(), stdout);
        if (!payload.empty() && payload.back() != '\n')
            std::fputc('\n', stdout);
        return;
    }
    std::ofstream file(opts.out,
                       std::ios::binary | std::ios::trunc);
    file << payload;
    if (!file)
        fatal("cannot write %s", opts.out.c_str());
    logStatus("[clearsim_client] wrote %zu bytes to %s",
              payload.size(), opts.out.c_str());
}

ClientOptions
parseArgs(int argc, char **argv)
{
    ClientOptions opts;
    auto number = [](const std::string &text, const char *what) {
        return parseUnsignedOrDie(
            text.c_str(), what, 0,
            std::numeric_limits<std::uint64_t>::max());
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.socket = value();
        } else if (arg == "--out") {
            opts.out = value();
        } else if (arg == "--tag") {
            opts.tag = value();
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--id") {
            opts.id = value();
        } else if (arg == "--config") {
            opts.config = value();
        } else if (arg == "--workload") {
            opts.workload = value();
        } else if (arg == "--configs") {
            opts.configs = splitList(value());
        } else if (arg == "--workloads") {
            opts.workloads = splitList(value());
        } else if (arg == "--retries") {
            const std::string v = value();
            opts.haveRetries = true;
            opts.retriesList.clear();
            for (const std::string &item : splitList(v))
                opts.retriesList.push_back(
                    number(item, "--retries"));
            opts.retries = opts.retriesList.empty()
                               ? 0
                               : opts.retriesList.front();
        } else if (arg == "--threads") {
            opts.threads = number(value(), "--threads");
            opts.haveThreads = true;
        } else if (arg == "--ops") {
            opts.ops = number(value(), "--ops");
            opts.haveOps = true;
        } else if (arg == "--scale") {
            opts.scale = number(value(), "--scale");
            opts.haveScale = true;
        } else if (arg == "--seed") {
            opts.seed = number(value(), "--seed");
            opts.haveSeed = true;
        } else if (arg == "--seeds") {
            opts.seeds = number(value(), "--seeds");
            opts.haveSeeds = true;
        } else if (arg == "--trim") {
            opts.trim = number(value(), "--trim");
            opts.haveTrim = true;
        } else if (arg == "--jobs") {
            opts.jobs = number(value(), "--jobs");
            opts.haveJobs = true;
        } else if (arg == "--shards") {
            opts.shards = number(value(), "--shards");
            opts.haveShards = true;
        } else if (arg == "--retry-connect") {
            opts.retryConnect =
                number(value(), "--retry-connect");
        } else if (arg.rfind("--retry-connect=", 0) == 0) {
            opts.retryConnect =
                number(arg.substr(16), "--retry-connect");
        } else if (!arg.empty() && arg[0] != '-' &&
                   opts.command.empty()) {
            opts.command = arg;
        } else {
            usage();
        }
    }
    if (opts.command.empty())
        usage();
    const bool known =
        opts.command == "catalogue" || opts.command == "run" ||
        opts.command == "analyze" || opts.command == "sweep" ||
        opts.command == "fabric-sweep" ||
        opts.command == "audit" || opts.command == "status" ||
        opts.command == "fabric-status" ||
        opts.command == "workers" || opts.command == "cancel" ||
        opts.command == "dlq-list" ||
        opts.command == "dlq-replay" ||
        opts.command == "dlq-clear";
    if (!known)
        usage();
    if ((opts.command == "run" || opts.command == "analyze") &&
        opts.workload.empty()) {
        std::fprintf(stderr,
                     "clearsim_client: %s needs --workload\n",
                     opts.command.c_str());
        usage();
    }
    if (opts.command == "cancel" && opts.id.empty()) {
        std::fprintf(stderr,
                     "clearsim_client: cancel needs --id\n");
        usage();
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const ClientOptions opts = parseArgs(argc, argv);

    ClientConnection connection;
    std::string error;
    if (!connection.connectWithRetry(
            opts.socket,
            static_cast<unsigned>(opts.retryConnect), error))
        fatal("%s", error.c_str());
    if (needsV2(opts.command) && connection.version() < 2)
        fatal("daemon does not speak %s (needed for %s)",
              kWireSchemaV2, opts.command.c_str());
    if (!connection.send(buildRequest(opts), error))
        fatal("%s", error.c_str());

    // status/cancel acks are terminal for the client's purposes:
    // cancel gets an "ack" (or "error"), status gets a "result".
    if (opts.command == "cancel") {
        WireMessage reply;
        if (!connection.receive(reply, error))
            fatal("%s", error.c_str());
        if (reply.type == "error")
            fatal("server: %s", reply.text("message").c_str());
        logStatus("[clearsim_client] %s %s",
                  reply.text("state").c_str(),
                  reply.text("id").c_str());
        return 0;
    }

    WireMessage outcome;
    const auto on_event = [&opts](const WireMessage &event) {
        if (opts.quiet)
            return;
        if (event.type == "ack")
            logStatus("[clearsim_client] %s: %s",
                      event.text("state").c_str(),
                      event.text("id").c_str());
        else if (event.type == "progress")
            logStatus("[clearsim_client] progress %llu/%llu",
                      static_cast<unsigned long long>(
                          event.number("done")),
                      static_cast<unsigned long long>(
                          event.number("total")));
        else if (event.type == "cell")
            logStatus("[clearsim_client] cell %s",
                      event.text("row").c_str());
    };
    if (!connection.waitForOutcome(outcome, error, on_event))
        fatal("%s", error.empty() ? "connection closed"
                                  : error.c_str());

    if (outcome.type == "error")
        fatal("server: %s", outcome.text("message").c_str());
    if (outcome.type == "failed") {
        std::fprintf(stderr, "clearsim_client: job failed: %s\n",
                     outcome.text("error").c_str());
        const std::string repro = outcome.text("repro");
        if (!repro.empty())
            std::fprintf(stderr, "  repro: %s\n", repro.c_str());
        return 3;
    }
    if (outcome.type == "cancelled") {
        std::fprintf(stderr, "clearsim_client: job cancelled\n");
        return 4;
    }
    if (outcome.type == "job-aborted") {
        std::fprintf(stderr,
                     "clearsim_client: job aborted: %s\n",
                     outcome.text("message").c_str());
        return 3;
    }
    writePayload(opts, outcome.text("payload"));
    return 0;
}
