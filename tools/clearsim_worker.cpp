/**
 * @file
 * clearsim_worker: a sweep-fabric worker process.
 *
 *   clearsim_worker --socket /tmp/clearsimd.sock --name w0
 *
 * Connects to a clearsimd coordinator (retrying with backoff while
 * the socket appears), then leases shards of the active fabric
 * sweep, executes them through the standard sweep engine, and
 * reports the rows back. Heartbeats keep the lease alive; a SIGTERM
 * or SIGINT finishes nothing mid-flight — the worker deregisters
 * with worker-bye so its shards return to the pool unpenalized.
 *
 * Run as many of these as you have machines' worth of cores; the
 * merged sweep is byte-identical regardless of how many there are
 * or which of them die (docs/SERVICE.md, "Sweep fabric").
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "common/env.hh"
#include "common/log.hh"
#include "service/worker.hh"

using namespace clearsim;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_worker [options]\n"
        "  --socket <path>      coordinator socket\n"
        "                       (default clearsimd.sock)\n"
        "  --name <text>        worker name in fabric-status\n"
        "                       (default worker-<pid>)\n"
        "  --jobs <n>           threads per shard (default: the\n"
        "                       grant's value, then all hardware\n"
        "                       threads)\n"
        "  --retry-connect <n>  connect attempts with backoff\n"
        "                       (default 40)\n"
        "  --max-idle-polls <n> exit cleanly after <n> consecutive\n"
        "                       idle replies (default 0 = poll\n"
        "                       until killed)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    FabricWorkerOptions options;
    options.name = "worker-" + std::to_string(::getpid());
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value();
        } else if (arg == "--name") {
            options.name = value();
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                parseUnsignedOrDie(value().c_str(), "--jobs", 0,
                                   4096));
        } else if (arg == "--retry-connect") {
            options.connectAttempts = static_cast<unsigned>(
                parseUnsignedOrDie(value().c_str(),
                                   "--retry-connect", 1, 10000));
        } else if (arg == "--max-idle-polls") {
            options.maxIdlePolls = static_cast<unsigned>(
                parseUnsignedOrDie(value().c_str(),
                                   "--max-idle-polls", 0, 1000000));
        } else {
            usage();
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    FabricWorker worker(options);
    const int status = worker.run(g_stop);
    const FabricWorker::Totals &totals = worker.totals();
    logStatus("[clearsim_worker] %s: %llu shards, %llu cells "
              "(%llu failed), %llu reconnects",
              options.name.c_str(),
              static_cast<unsigned long long>(
                  totals.shardsCompleted),
              static_cast<unsigned long long>(totals.cellsExecuted),
              static_cast<unsigned long long>(totals.cellsFailed),
              static_cast<unsigned long long>(totals.reconnects));
    return status;
}
