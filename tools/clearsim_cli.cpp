/**
 * @file
 * clearsim command-line runner.
 *
 * Runs one or more workloads under one or more configurations and
 * prints either a human table or CSV, without recompiling anything:
 *
 *   clearsim_cli --workload bitcoin --config C --ops 32 --seed 7
 *   clearsim_cli --workload all --config B,P,C,W --csv
 *   clearsim_cli --workload bst --retries 6 --threads 16
 *   clearsim_cli --config C+scl-all-reads,C:maxRetries=8
 *
 * --config accepts ConfigRegistry spec strings: a preset name
 * optionally extended with +modifiers and :key=value overrides.
 * --list-configs prints everything the registry knows about.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "metrics/json_export.hh"
#include "metrics/stats_report.hh"
#include "metrics/trace_export.hh"

#include <iostream>

using namespace clearsim;

namespace
{

struct CliOptions
{
    std::vector<std::string> workloads = {"bitcoin"};
    std::vector<std::string> configs = {"B", "P", "C", "W"};
    unsigned ops = 32;
    unsigned threads = 32;
    unsigned retries = 4;
    /**
     * True once --retries was given. Without it the config spec's
     * own maxRetries (default or an explicit ":maxRetries=N" key)
     * wins, so a repro spec replays through the CLI unaltered.
     */
    bool retriesGiven = false;
    unsigned scale = 1;
    std::uint64_t seed = 42;
    bool csv = false;
    bool verify = true;
    bool trace = false;
    bool profile = false;
    bool stats = false;
    bool analyze = false;
    std::string analysisJsonPath;
    std::string certJsonPath;
    std::string statsJsonPath;
    std::string traceOutPath;
    std::string traceFormat = "jsonl";

    /**
     * --sweep <file>: run the CLEARSIM_*-configured sweep through
     * the shared engine and write the cache CSV there. The same
     * bytes a clearsimd sweep of the same options streams — the CI
     * byte-identity gate is `cmp` between the two.
     */
    std::string sweepOutPath;

    /**
     * --audit: run the CLEARSIM_*-configured mispredict audit (see
     * harness/audit.hh) and print the precision/recall report.
     * --audit-json additionally writes the clearsim-audit-v1
     * document, whose bytes are independent of CLEARSIM_JOBS.
     */
    bool audit = false;
    std::string auditJsonPath;
};

std::vector<std::string>
splitCsvList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: clearsim_cli [options]\n"
        "  --workload <name[,name...]|all>  (default bitcoin)\n"
        "  --config <spec[,spec...]>        (default B,P,C,W)\n"
        "                   spec = preset[+modifier...][:key=value...]\n"
        "                   e.g. C, C+scl-all-reads, B:maxRetries=8\n"
        "  --ops <n>        AR invocations per thread (default 32)\n"
        "  --threads <n>    simulated threads (default 32)\n"
        "  --retries <n>    retry limit before fallback (default 4)\n"
        "  --scale <n>      data-structure scale factor (default 1)\n"
        "  --seed <n>       master seed (default 42)\n"
        "  --csv            machine-readable output\n"
        "  --analyze        static region analysis instead of a\n"
        "                   measurement run (verdict table)\n"
        "  --analysis-json <f>  write clearsim-analysis-v1 to <f>\n"
        "                   (implies --analyze)\n"
        "  --cert-json <f>  write clearsim-cert-v1 eligibility\n"
        "                   certificates to <f> (implies --analyze)\n"
        "  --audit          run the CLEARSIM_*-configured mispredict\n"
        "                   audit and print the precision/recall\n"
        "                   report (exit 1 on audit failures)\n"
        "  --audit-json <f> write clearsim-audit-v1 to <f>\n"
        "                   (implies --audit)\n"
        "  --stats          per-run stats report to stderr\n"
        "  --stats-json <f> write clearsim-stats-v1 JSON to <f>\n"
        "  --trace          human-readable trace to stderr\n"
        "  --trace-out <f>  write the trace-event stream to <f>\n"
        "  --trace-format <jsonl|chrome>  --trace-out format\n"
        "                   (default jsonl; chrome loads in Perfetto)\n"
        "  --sweep <f>      run the CLEARSIM_*-configured sweep\n"
        "                   and write the cache CSV to <f>\n"
        "  --no-verify      skip invariant checking\n"
        "  --list-configs   list config presets/modifiers and exit\n"
        "  --list-workloads list workloads and exit (alias: --list)\n");
    std::exit(2);
}

[[noreturn]] void
listWorkloads()
{
    for (const std::string &name : workloadNames())
        std::printf("%-14s %s\n", name.c_str(),
                    workloadDescription(name).c_str());
    std::exit(0);
}

[[noreturn]] void
listConfigs()
{
    const ConfigRegistry &reg = ConfigRegistry::instance();

    // Size the name column to the longest entry across all three
    // sections so long modifier names (the fault plans) don't shove
    // their descriptions out of the shared column.
    std::size_t width = 0;
    for (const ConfigPreset &p : reg.presets())
        width = std::max(width, p.name.size());
    for (const ConfigModifier &m : reg.modifiers())
        width = std::max(width, m.name.size() + 1);
    for (const ConfigOverrideKey &k : reg.overrideKeys())
        width = std::max(width, k.name.size() + 1);
    const int col = static_cast<int>(width);

    std::printf("presets:\n");
    for (const ConfigPreset &p : reg.presets())
        std::printf("  %-*s  %s\n", col, p.name.c_str(),
                    p.description.c_str());
    std::printf("modifiers (append as +name):\n");
    for (const ConfigModifier &m : reg.modifiers())
        std::printf("  %-*s  %s\n", col, ("+" + m.name).c_str(),
                    m.description.c_str());
    std::printf("overrides (append as :key=value):\n");
    for (const ConfigOverrideKey &k : reg.overrideKeys())
        std::printf("  %-*s  %s\n", col, (":" + k.name).c_str(),
                    k.description.c_str());
    std::printf("spec grammar: preset[+modifier...][:key=value...]\n"
                "  e.g. C+scl-all-reads, B:maxRetries=8, "
                "C+sle:numCores=16\n");
    std::exit(0);
}

/**
 * Resolve every config spec and workload name before any run, so a
 * typo in the third entry fails fast with the registry's list of
 * valid names instead of after minutes of simulation.
 */
void
validateCliSelections(const CliOptions &opts)
{
    const ConfigRegistry &reg = ConfigRegistry::instance();
    for (const std::string &spec : opts.configs) {
        SystemConfig cfg;
        std::string error;
        if (!reg.tryMake(spec, cfg, error)) {
            std::fprintf(stderr, "clearsim_cli: --config %s: %s\n",
                         spec.c_str(), error.c_str());
            std::exit(2);
        }
    }
    const std::vector<std::string> known = workloadNames();
    for (const std::string &w : opts.workloads) {
        if (std::find(known.begin(), known.end(), w) ==
            known.end()) {
            std::string names;
            for (const std::string &k : known)
                names += (names.empty() ? "" : ", ") + k;
            std::fprintf(stderr,
                         "clearsim_cli: unknown workload '%s' "
                         "(known: %s)\n",
                         w.c_str(), names.c_str());
            std::exit(2);
        }
    }
}

/**
 * The CLI's one config-resolution path. Both --analyze captures and
 * measurement runs resolve their SystemConfig through this helper,
 * so an analysis is always captured under exactly the config the
 * matching run executes: same spec resolution, same --retries
 * override, same --profile flag, same thread-count capping. (A
 * capture/run divergence here once made verdicts refer to a machine
 * the run never simulated.)
 */
SystemConfig
resolveRunConfig(const CliOptions &opts, const std::string &spec)
{
    SystemConfig cfg = makeConfigByName(spec);
    if (opts.retriesGiven)
        cfg.maxRetries = opts.retries;
    if (opts.profile)
        cfg.profileMode = true;
    if (opts.threads < cfg.numCores)
        cfg.numCores = opts.threads;
    return cfg;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            const std::string v = value();
            opts.workloads =
                v == "all" ? workloadNames() : splitCsvList(v);
        } else if (arg == "--config") {
            opts.configs = splitCsvList(value());
        } else if (arg == "--ops") {
            opts.ops = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--ops", 1, 100000000));
        } else if (arg == "--threads") {
            opts.threads = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--threads", 1, 4096));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--retries", 0, 1000000));
            opts.retriesGiven = true;
        } else if (arg == "--scale") {
            opts.scale = static_cast<unsigned>(parseUnsignedOrDie(
                value().c_str(), "--scale", 1, 1000000));
        } else if (arg == "--seed") {
            opts.seed = parseUnsignedOrDie(
                value().c_str(), "--seed", 0,
                std::numeric_limits<std::uint64_t>::max());
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--trace") {
            opts.trace = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--analyze") {
            opts.analyze = true;
        } else if (arg == "--analysis-json") {
            opts.analyze = true;
            opts.analysisJsonPath = value();
        } else if (arg == "--cert-json") {
            opts.analyze = true;
            opts.certJsonPath = value();
        } else if (arg == "--audit") {
            opts.audit = true;
        } else if (arg == "--audit-json") {
            opts.audit = true;
            opts.auditJsonPath = value();
        } else if (arg == "--stats-json") {
            opts.statsJsonPath = value();
        } else if (arg == "--trace-out") {
            opts.traceOutPath = value();
        } else if (arg == "--trace-format") {
            opts.traceFormat = value();
            if (opts.traceFormat != "jsonl" &&
                opts.traceFormat != "chrome") {
                std::fprintf(stderr,
                             "clearsim_cli: --trace-format must be "
                             "jsonl or chrome\n");
                std::exit(2);
            }
        } else if (arg == "--sweep") {
            opts.sweepOutPath = value();
        } else if (arg == "--no-verify") {
            opts.verify = false;
        } else if (arg == "--list" || arg == "--list-workloads") {
            listWorkloads();
        } else if (arg == "--list-configs") {
            listConfigs();
        } else {
            usage();
        }
    }
    return opts;
}

/**
 * Create @p path's parent directories before an output stream opens
 * it. Every CLI output flag shares this, so "--trace-out out/t.jsonl"
 * into a fresh directory works like the JSON writers always have
 * instead of failing with a bare "cannot open".
 */
void
ensureParentDir(const std::string &path, const char *flag)
{
    const std::filesystem::path target(path);
    if (!target.has_parent_path())
        return;
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
        fatal("%s: cannot create directory %s: %s", flag,
              target.parent_path().string().c_str(),
              ec.message().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opts = parseArgs(argc, argv);
    validateCliSelections(opts);

    if (!opts.sweepOutPath.empty()) {
        // Sweep mode: the CLI is a thin client of the same engine
        // path clearsimd drives, so the written bytes are the
        // byte-identity reference for the service CI gate.
        const SweepOptions sweep = SweepOptions::fromEnv();
        const SweepOutcome outcome =
            runSweepGrid(sweep, {}, SweepObserver{});
        SweepSummary cells;
        bool any_failed = false;
        for (const auto &[key, cell] : outcome.cells) {
            if (cell.failed) {
                any_failed = true;
                std::fprintf(stderr,
                             "clearsim_cli: FAILED %s/%s: %s\n"
                             "  repro: %s\n",
                             cell.workload.c_str(),
                             cell.config.c_str(),
                             cell.error.c_str(),
                             cell.repro.c_str());
                continue;
            }
            cells[key] = CellSummary::fromCell(cell);
        }
        if (any_failed)
            fatal("--sweep: the sweep had failing cells");
        const std::string bytes = serializeSweepCache(
            sweepOptionsHash(sweep), cells);
        ensureParentDir(opts.sweepOutPath, "--sweep");
        std::ofstream out(opts.sweepOutPath,
                          std::ios::binary | std::ios::trunc);
        out << bytes;
        if (!out)
            fatal("--sweep: cannot write %s",
                  opts.sweepOutPath.c_str());
        logStatus("[clearsim] wrote %zu sweep cells to %s",
                  cells.size(), opts.sweepOutPath.c_str());
        return 0;
    }

    if (opts.audit) {
        // Audit mode: like --sweep, the grid comes from the
        // CLEARSIM_* environment so CLI, daemon, and CI runs of the
        // same options produce byte-identical documents.
        const AuditOptions audit = AuditOptions::fromEnv();
        const AuditResult result = runAudit(audit);
        std::fputs(auditReport(result).c_str(), stdout);
        if (!opts.auditJsonPath.empty()) {
            std::string error;
            if (!writeAuditJson(opts.auditJsonPath, result, error))
                fatal("--audit-json: %s", error.c_str());
            logStatus("[clearsim] wrote audit of %llu runs to %s",
                      static_cast<unsigned long long>(result.runs),
                      opts.auditJsonPath.c_str());
        }
        if (!result.failures.empty()) {
            std::fprintf(stderr,
                         "[clearsim] %llu audit unit(s) failed\n",
                         static_cast<unsigned long long>(
                             result.failures.size()));
            return 1;
        }
        return 0;
    }

    if (opts.analyze) {
        // Analysis mode: capture runs + static passes, no
        // measurement table.
        std::vector<AnalysisResult> analyses;
        std::vector<CertificateSet> certs;
        for (const std::string &workload : opts.workloads) {
            for (const std::string &config : opts.configs) {
                WorkloadParams params;
                params.threads = opts.threads;
                params.opsPerThread = opts.ops;
                params.scale = opts.scale;
                params.seed = opts.seed;
                // Capture under the exact config a run of the same
                // command line would execute; label the table with
                // the spec text the user typed.
                const SystemConfig cfg =
                    resolveRunConfig(opts, config);
                AnalyzeOutcome outcome =
                    analyzeWithConfig(cfg, workload, params);
                outcome.analysis.config = config;
                writeAnalysisTable(std::cout, outcome.analysis);
                if (!opts.certJsonPath.empty())
                    certs.push_back(
                        buildCertificates(outcome.analysis, cfg));
                analyses.push_back(std::move(outcome.analysis));
            }
        }
        if (!opts.analysisJsonPath.empty()) {
            std::string error;
            if (!writeAnalysisJson(opts.analysisJsonPath, analyses,
                                   error))
                fatal("--analysis-json: %s", error.c_str());
            logStatus("[clearsim] wrote %llu analyses to %s",
                      static_cast<unsigned long long>(
                          analyses.size()),
                      opts.analysisJsonPath.c_str());
        }
        if (!opts.certJsonPath.empty()) {
            std::string error;
            if (!writeCertJson(opts.certJsonPath, certs, error))
                fatal("--cert-json: %s", error.c_str());
            logStatus(
                "[clearsim] wrote %llu certificate sets to %s",
                static_cast<unsigned long long>(certs.size()),
                opts.certJsonPath.c_str());
        }
        return 0;
    }

    if (opts.csv) {
        std::printf("workload,config,retries,seed,cycles,commits,"
                    "aborts,aborts_per_commit,spec,scl,nscl,"
                    "fallback,energy\n");
    } else {
        std::printf("%-12s %-4s %12s %10s %8s %8s %8s %8s\n",
                    "workload", "cfg", "cycles", "aborts/c",
                    "spec%", "s-cl%", "ns-cl%", "fallbk%");
    }

    std::vector<RunResult> allRuns;
    std::vector<TraceEvent> traceEvents;
    const bool collectTrace = !opts.traceOutPath.empty();
    unsigned failedRuns = 0;

    for (const std::string &workload : opts.workloads) {
        for (const std::string &config : opts.configs) {
            SystemConfig cfg = resolveRunConfig(opts, config);
            WorkloadParams params;
            params.threads = opts.threads;
            params.opsPerThread = opts.ops;
            params.scale = opts.scale;
            params.seed = opts.seed;

            RunResult run;
            try {
            if (opts.trace || opts.profile || collectTrace) {
                // This branch drives System directly instead of
                // going through runOnce(), so it must install the
                // adaptive decision table itself — otherwise a
                // traced "--config A" run would silently execute
                // the static CLEAR policy.
                RegionPolicyTable regionPolicy;
                System sys(cfg, params.seed);
                if (cfg.adapt.enabled) {
                    regionPolicy =
                        buildRegionPolicy(cfg, workload, params);
                    sys.setRegionPolicy(&regionPolicy);
                    run.decisionReport = regionPolicy.report();
                }
                if (opts.trace || collectTrace) {
                    sys.setTraceSink([&](const TraceEvent &e) {
                        if (collectTrace)
                            traceEvents.push_back(e);
                        if (!opts.trace)
                            return;
                        std::fprintf(
                            stderr,
                            "%10llu core%-3u pc=0x%llx %-17s %-8s "
                            "%s retries=%u\n",
                            static_cast<unsigned long long>(
                                e.cycle),
                            unsigned(e.core),
                            static_cast<unsigned long long>(e.pc),
                            traceKindName(e.kind),
                            execModeName(e.mode),
                            abortReasonName(e.reason),
                            e.countedRetries);
                    });
                }
                auto w = makeWorkload(workload, params);
                run.workload = workload;
                run.config = cfg.name;
                run.seed = params.seed;
                run.maxRetries = cfg.maxRetries;
                run.numCores = cfg.numCores;
                run.cycles = runWorkloadThreads(sys, *w);
                run.htm = sys.stats();
                run.mem = sys.mem().stats();
                run.lockHoldCycles =
                    sys.mem().locks().holdCycles();
                run.energy = computeEnergy(EnergyParams{},
                                           run.cycles, cfg.numCores,
                                           run.htm, run.mem);
            } else {
                run = runOnce(cfg, workload, params, opts.verify);
            }
            } catch (const std::exception &err) {
                // Invariant violations and verification failures
                // are reported per (workload, config) combination;
                // the remaining combinations still run and the
                // process exits nonzero at the end.
                ++failedRuns;
                std::fprintf(stderr,
                             "[clearsim] FAILED %s [%s]:\n%s\n",
                             workload.c_str(), config.c_str(),
                             err.what());
                continue;
            }
            if (!opts.statsJsonPath.empty())
                allRuns.push_back(run);
            if (!run.decisionReport.empty()) {
                // Adaptive runs: what the capture pass decided per
                // region, before the measured numbers.
                std::fprintf(stderr,
                             "# per-region decisions for %s [%s]\n%s",
                             workload.c_str(), config.c_str(),
                             run.decisionReport.c_str());
            }
            if (opts.profile) {
                std::fprintf(stderr,
                             "# region profiles for %s [%s]\n"
                             "# %-10s %10s %10s %10s %8s %6s %8s\n",
                             workload.c_str(), config.c_str(), "pc",
                             "invocs", "retrying", "immut-rt",
                             "maxlines", "indir", "fpchange");
                for (const auto &[pc, prof] : run.htm.regions) {
                    std::fprintf(
                        stderr,
                        "  0x%-9llx %10llu %10llu %10llu %8llu "
                        "%6s %8s\n",
                        static_cast<unsigned long long>(pc),
                        static_cast<unsigned long long>(
                            prof.invocations),
                        static_cast<unsigned long long>(
                            prof.retryingInvocations),
                        static_cast<unsigned long long>(
                            prof.immutableRetries),
                        static_cast<unsigned long long>(
                            prof.maxFootprintLines),
                        prof.sawIndirection ? "yes" : "no",
                        prof.footprintChanged ? "yes" : "no");
                }
            }
            if (opts.stats)
                writeStatsReport(std::cerr, run, cfg.numCores);
            const auto modes = run.commitModeFractions();

            if (opts.csv) {
                std::printf(
                    "%s,%s,%u,%llu,%llu,%llu,%llu,%.4f,%.4f,%.4f,"
                    "%.4f,%.4f,%.1f\n",
                    workload.c_str(), config.c_str(),
                    cfg.maxRetries,
                    static_cast<unsigned long long>(opts.seed),
                    static_cast<unsigned long long>(run.cycles),
                    static_cast<unsigned long long>(
                        run.htm.commits),
                    static_cast<unsigned long long>(run.htm.aborts),
                    run.abortsPerCommit(), modes[0], modes[1],
                    modes[2], modes[3], run.energy.total());
            } else {
                std::printf(
                    "%-12s %-4s %12llu %10.2f %7.1f%% %7.1f%% "
                    "%7.1f%% %7.1f%%\n",
                    workload.c_str(), config.c_str(),
                    static_cast<unsigned long long>(run.cycles),
                    run.abortsPerCommit(), 100 * modes[0],
                    100 * modes[1], 100 * modes[2], 100 * modes[3]);
            }
        }
    }

    if (collectTrace) {
        ensureParentDir(opts.traceOutPath, "--trace-out");
        std::ofstream os(opts.traceOutPath,
                         std::ios::binary | std::ios::trunc);
        if (!os) {
            fatal("cannot open --trace-out file %s",
                  opts.traceOutPath.c_str());
        }
        if (opts.traceFormat == "chrome") {
            writeChromeTrace(os, traceEvents);
        } else {
            TraceJsonlWriter writer(os);
            for (const TraceEvent &e : traceEvents)
                writer.write(e);
        }
        os.flush();
        if (!os) {
            fatal("write to --trace-out file %s failed",
                  opts.traceOutPath.c_str());
        }
        logStatus("[clearsim] wrote %llu trace events to %s",
                  static_cast<unsigned long long>(
                      traceEvents.size()),
                  opts.traceOutPath.c_str());
    }

    if (!opts.statsJsonPath.empty()) {
        std::string error;
        if (!writeStatsJson(opts.statsJsonPath, allRuns, error))
            fatal("--stats-json: %s", error.c_str());
        logStatus("[clearsim] wrote stats for %llu runs to %s",
                  static_cast<unsigned long long>(allRuns.size()),
                  opts.statsJsonPath.c_str());
    }
    if (failedRuns != 0) {
        std::fprintf(stderr, "[clearsim] %u run(s) failed\n",
                     failedRuns);
        return 1;
    }
    return 0;
}
