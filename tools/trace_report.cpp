/**
 * @file
 * Offline trace aggregator.
 *
 * Reads a JSONL trace written by `clearsim_cli --trace-out` and
 * prints summaries:
 *
 *   trace_report aborts <trace.jsonl>   abort-attribution table:
 *                                       per (region pc, culprit
 *                                       line), aborts split by the
 *                                       Figure 11 categories
 *   trace_report summary <trace.jsonl>  event counts per kind
 *   trace_report chrome <trace.jsonl>   re-emit as Chrome
 *                                       trace_event JSON (stdout),
 *                                       for Perfetto
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/trace.hh"
#include "metrics/trace_export.hh"

using namespace clearsim;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: trace_report <aborts|summary|chrome> "
                 "<trace.jsonl>\n"
                 "  aborts   abort-attribution table "
                 "(region/line -> category counts)\n"
                 "  summary  event counts per trace kind\n"
                 "  chrome   convert to Chrome trace_event JSON "
                 "on stdout\n");
    std::exit(2);
}

std::vector<TraceEvent>
loadTrace(const char *path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "trace_report: cannot open %s\n", path);
        std::exit(1);
    }
    std::vector<TraceEvent> events;
    std::string error;
    if (!readTraceJsonl(is, events, error)) {
        std::fprintf(stderr, "trace_report: %s: %s\n", path,
                     error.c_str());
        std::exit(1);
    }
    return events;
}

void
reportSummary(const std::vector<TraceEvent> &events)
{
    std::uint64_t byKind[kNumTraceKinds] = {};
    for (const TraceEvent &event : events)
        ++byKind[static_cast<unsigned>(event.kind)];
    for (unsigned k = 0; k < kNumTraceKinds; ++k) {
        if (byKind[k] == 0)
            continue;
        std::printf("%-20s %12llu\n",
                    traceKindName(static_cast<TraceKind>(k)),
                    static_cast<unsigned long long>(byKind[k]));
    }
    std::printf("%-20s %12llu\n", "total",
                static_cast<unsigned long long>(events.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3)
        usage();
    const char *mode = argv[1];
    const std::vector<TraceEvent> events = loadTrace(argv[2]);

    if (std::strcmp(mode, "aborts") == 0) {
        writeAbortAttributionTable(std::cout,
                                   attributeAborts(events));
    } else if (std::strcmp(mode, "summary") == 0) {
        reportSummary(events);
    } else if (std::strcmp(mode, "chrome") == 0) {
        writeChromeTrace(std::cout, events);
    } else {
        usage();
    }
    return 0;
}
