/**
 * @file
 * Figure 13: commit breakdown by the number of retries it took,
 * excluding commits at 0 retries: the shares of retried
 * invocations that committed after exactly one retry, after more
 * than one retry, or on the fallback path.
 *
 * This is the headline claim of the paper: baseline finishes on
 * the first retry 35.4% of the time and falls back 37.2%; CLEAR
 * over requester-wins reaches 64.2% first-retry with only 15.5%
 * fallback (64.4% / 15.4% over PowerTM).
 */

#include <cstdio>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 13: Commit breakdown per number of retries "
                "(excluding commits at 0 retries)\n\n");
    std::printf("%-12s %-4s %10s %10s %10s\n", "benchmark", "cfg",
                "1-retry", "n-retry", "fallback");

    CsvTable csv;
    csv.header = {"benchmark", "config", "one_retry", "n_retry",
                  "fallback"};
    double sum[4][3] = {};
    unsigned rows = 0;
    for (const std::string &w : opts.workloads) {
        for (unsigned ci = 0; ci < opts.configs.size(); ++ci) {
            const CellSummary &cell =
                sweep.at({w, opts.configs[ci]});
            const std::uint64_t non_fb_retried =
                cell.commitsNonFallback - cell.commitsRetry0;
            const std::uint64_t retried =
                non_fb_retried + cell.commitsFallback;
            double one = 0.0;
            double multi = 0.0;
            double fb = 0.0;
            if (retried) {
                one = 100.0 * cell.commitsRetry1 / retried;
                multi = 100.0 *
                        (non_fb_retried - cell.commitsRetry1) /
                        retried;
                fb = 100.0 * cell.commitsFallback / retried;
            }
            sum[ci][0] += one;
            sum[ci][1] += multi;
            sum[ci][2] += fb;
            std::printf("%-12s %-4s %9.1f%% %9.1f%% %9.1f%%\n",
                        w.c_str(), opts.configs[ci].c_str(), one,
                        multi, fb);
            csv.rows.push_back({w, opts.configs[ci],
                                formatFixed(one, 2),
                                formatFixed(multi, 2),
                                formatFixed(fb, 2)});
        }
        ++rows;
        std::printf("\n");
    }
    maybeExportCsv("fig13_retry_breakdown", csv);
    std::printf("averages (paper: B 35.4/27.4/37.2, P 46.4/26.2/"
                "27.4, C 64.2/20.3/15.5, W 64.4/20.2/15.4):\n");
    for (unsigned ci = 0; ci < opts.configs.size(); ++ci) {
        std::printf("%-12s %-4s %9.1f%% %9.1f%% %9.1f%%\n",
                    "average", opts.configs[ci].c_str(),
                    sum[ci][0] / rows, sum[ci][1] / rows,
                    sum[ci][2] / rows);
    }
    return 0;
}
