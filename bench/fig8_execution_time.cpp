/**
 * @file
 * Figure 8: execution time normalized to requester-wins, for the
 * four static configurations (B, P, C, W) plus the adaptive preset
 * A, and the share of time spent running aborted work in discovery
 * (the stacked overlay of the paper's figure).
 *
 * Expected shape (paper): P ~12.7% faster than B on average,
 * C ~27.4%, W ~35.0%; discovery overhead under 1% except intruder.
 *
 * The shared sweep behind this figure runs on CLEARSIM_JOBS worker
 * threads (default: all hardware threads); results are identical
 * for every job count.
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 8: Normalized execution time "
                "(requester-wins B = 1.00)\n\n");
    std::printf("%-12s %8s %8s %8s %8s %8s %10s\n", "benchmark",
                "B", "P", "C", "W", "A", "disc(C)");

    CsvTable csv;
    csv.header = {"benchmark", "B", "P", "C", "W", "A",
                  "disc_share_C"};
    std::vector<double> norm_p, norm_c, norm_w, norm_a;
    for (const std::string &w : opts.workloads) {
        const double base = sweep.at({w, "B"}).cycles;
        const double p = sweep.at({w, "P"}).cycles / base;
        const double c = sweep.at({w, "C"}).cycles / base;
        const double wt = sweep.at({w, "W"}).cycles / base;
        const double a = sweep.at({w, "A"}).cycles / base;
        norm_p.push_back(p);
        norm_c.push_back(c);
        norm_w.push_back(wt);
        norm_a.push_back(a);
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f %8.2f %9.1f%%\n",
                    w.c_str(), 1.0, p, c, wt, a,
                    100.0 * sweep.at({w, "C"}).discoveryShare);
        csv.rows.push_back(
            {w, "1.0", formatFixed(p, 4), formatFixed(c, 4),
             formatFixed(wt, 4), formatFixed(a, 4),
             formatFixed(sweep.at({w, "C"}).discoveryShare, 4)});
    }
    maybeExportCsv("fig8_execution_time", csv);
    std::printf("%-12s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                kGeomeanLabel, 1.0, geomean(norm_p),
                geomean(norm_c), geomean(norm_w), geomean(norm_a));
    std::printf("\npaper geomeans: P 0.87, C 0.73, W 0.65 "
                "(A is this reproduction's adaptive extension)\n");
    return 0;
}
