/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * simulator's hot substrates — event queue, cache tag arrays, the
 * directory, the conflict-manager registry, the lock manager and
 * the RNG. These bound the simulation rate of the full system.
 */

#include <benchmark/benchmark.h>

#include "clearsim/clearsim.hh"

using namespace clearsim;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue queue;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            queue.schedule(static_cast<Cycle>(i % 97),
                           [&sink] { ++sink; });
        queue.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheModelInsert(benchmark::State &state)
{
    CacheModel cache(64, 12);
    Rng rng(1);
    for (auto _ : state) {
        const LineAddr line = rng.nextBelow(4096);
        benchmark::DoNotOptimize(cache.insert(line));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelInsert);

void
BM_DirectoryReadWrite(benchmark::State &state)
{
    Directory dir(4096, 32);
    Rng rng(2);
    for (auto _ : state) {
        const LineAddr line = rng.nextBelow(2048);
        const CoreId core = static_cast<CoreId>(rng.nextBelow(32));
        if (rng.nextBool(0.3))
            benchmark::DoNotOptimize(dir.onWrite(core, line));
        else
            benchmark::DoNotOptimize(dir.onRead(core, line));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryReadWrite);

void
BM_LockManagerLockUnlock(benchmark::State &state)
{
    LockManager locks;
    locks.configureDirSets(4096);
    Rng rng(3);
    for (auto _ : state) {
        const LineAddr line = rng.nextBelow(512);
        const CoreId core = static_cast<CoreId>(rng.nextBelow(32));
        if (locks.tryLock(line, core))
            locks.unlock(line, core);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockManagerLockUnlock);

void
BM_FootprintRecord(benchmark::State &state)
{
    Rng rng(7);
    Footprint fp(64);
    for (auto _ : state) {
        fp.clear();
        for (int i = 0; i < 24; ++i)
            fp.record(rng.nextBelow(4096), rng.nextBool(0.4));
    }
    state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_FootprintRecord);

void
BM_AltBuildPlan(benchmark::State &state)
{
    Rng rng(11);
    Alt alt(32, 4096, 64, 12);
    Crt crt(64, 8);
    Footprint fp(64);
    for (int i = 0; i < 24; ++i)
        fp.record(rng.nextBelow(1 << 20), rng.nextBool(0.4));
    for (auto _ : state) {
        auto plan = alt.buildPlan(fp, crt, false);
        benchmark::DoNotOptimize(plan);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AltBuildPlan);

void
BM_ConflictArbitration(benchmark::State &state)
{
    SystemConfig cfg = makeBaselineConfig();
    PowerToken power;
    ConflictManager cm(cfg, power);
    Rng rng(13);
    for (unsigned c = 0; c < 16; ++c) {
        for (int i = 0; i < 8; ++i)
            cm.addRead(static_cast<CoreId>(c), rng.nextBelow(512));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cm.arbitrate(17, rng.nextBelow(512), true,
                         RequesterClass::Speculative));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConflictArbitration);

void
BM_Rng(benchmark::State &state)
{
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

void
BM_FullRunBitcoin(benchmark::State &state)
{
    for (auto _ : state) {
        WorkloadParams params;
        params.opsPerThread = 4;
        params.seed = 17;
        SystemConfig cfg = makeClearConfig();
        System sys(cfg, params.seed);
        auto workload = makeWorkload("bitcoin", params);
        benchmark::DoNotOptimize(
            runWorkloadThreads(sys, *workload));
    }
}
BENCHMARK(BM_FullRunBitcoin)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
