/**
 * @file
 * Ablation B: CLEAR design choices.
 *
 *  1. S-CL lock policy: the paper locks the write set plus CRT
 *     reads ("-writes-"); the alternative locks every learned
 *     address ("-all-"), trading extra exclusivity traffic for
 *     fewer conflicts on read-mostly lines (Section 4.4.2).
 *  2. Failed-mode discovery on/off: without continuing past the
 *     first conflict, discovery rarely sees a complete footprint
 *     and CLEAR degenerates towards the baseline (Section 4.1).
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"

using namespace clearsim;

namespace
{

RunResult
runVariant(const std::string &workload, const WorkloadParams &params,
           const std::string &spec)
{
    return runOnce(makeConfigFromSpec(spec), workload, params);
}

} // namespace

int
main()
{
    WorkloadParams params;
    params.opsPerThread = 16;
    params.seed = 9;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        params.opsPerThread = static_cast<unsigned>(std::atoi(v));

    const std::vector<std::string> workloads = {
        "bitcoin", "bst",        "hashmap",   "queue",
        "stack",   "sorted-list", "intruder", "vacation-h",
        "genome"};

    std::printf("Ablation B: S-CL lock policy and failed-mode "
                "discovery (config C, cycles)\n\n");
    std::printf("%-12s %12s %12s %14s\n", "benchmark",
                "writes+CRT", "lock-all", "no-failed-mode");

    for (const std::string &w : workloads) {
        const RunResult writes = runVariant(w, params, "C");
        const RunResult all =
            runVariant(w, params, "C+scl-all-reads");
        const RunResult nofm =
            runVariant(w, params, "C+no-failed-mode");
        std::printf("%-12s %12llu %12llu %14llu\n", w.c_str(),
                    static_cast<unsigned long long>(writes.cycles),
                    static_cast<unsigned long long>(all.cycles),
                    static_cast<unsigned long long>(nofm.cycles));
    }
    std::printf("\n('writes+CRT' is the paper's S-CL policy; "
                "'no-failed-mode' disables Section 4.1's failed-mode "
                "discovery continuation.)\n");
    return 0;
}
