/**
 * @file
 * Table 1: characterization of atomic regions.
 *
 * Runs every workload once in profile mode (baseline HTM decisions,
 * but footprints recorded to completion) and classifies each static
 * region that executed at least once:
 *
 *  - immutable: never used a load-derived address or branch;
 *  - likely immutable: used indirections, but the footprint never
 *    changed between two attempts of one invocation;
 *  - mutable: the footprint was observed to change.
 *
 * The paper's source-level classification is printed alongside for
 * comparison. Dynamic classification can differ slightly: a region
 * that is mutable in principle but whose footprint happened to stay
 * stable in this run reads as likely immutable.
 */

#include <cstdio>

#include "clearsim/clearsim.hh"

using namespace clearsim;

namespace
{

struct PaperRow
{
    const char *name;
    unsigned regions;
    unsigned immutable;
    unsigned likely;
    unsigned mutable_;
};

constexpr PaperRow kPaperTable[] = {
    {"arrayswap", 2, 2, 0, 0}, {"bitcoin", 1, 0, 1, 0},
    {"bst", 3, 0, 0, 3},       {"deque", 2, 0, 1, 1},
    {"hashmap", 3, 0, 0, 3},   {"mwobject", 1, 1, 0, 0},
    {"queue", 2, 0, 1, 1},     {"stack", 2, 0, 1, 1},
    {"sorted-list", 3, 1, 0, 2}, {"bayes", 14, 0, 5, 9},
    {"genome", 5, 0, 0, 5},    {"intruder", 3, 0, 2, 1},
    {"kmeans-h", 3, 1, 2, 0},  {"kmeans-l", 3, 1, 2, 0},
    {"labyrinth", 3, 0, 0, 3}, {"ssca2", 3, 2, 1, 0},
    {"vacation-h", 3, 0, 1, 2}, {"vacation-l", 3, 0, 1, 2},
    {"yada", 6, 1, 0, 5},
};

} // namespace

int
main()
{
    WorkloadParams params;
    params.opsPerThread = 24;
    params.seed = 7;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        params.opsPerThread = static_cast<unsigned>(std::atoi(v));

    std::printf("Table 1: Characterization of ARs "
                "(measured vs. paper)\n");
    std::printf("%-12s | %9s | %19s | %19s | %19s\n", "benchmark",
                "#ARs", "immutable", "likely-immutable", "mutable");
    std::printf("%-12s | %4s %4s | %9s %9s | %9s %9s | %9s %9s\n",
                "", "sim", "ppr", "sim", "ppr", "sim", "ppr", "sim",
                "ppr");

    for (const PaperRow &row : kPaperTable) {
        SystemConfig cfg = makeBaselineConfig();
        cfg.profileMode = true;
        const RunResult run = runOnce(cfg, row.name, params);

        unsigned executed = 0;
        unsigned immutable = 0;
        unsigned likely = 0;
        unsigned mut = 0;
        for (const auto &[pc, profile] : run.htm.regions) {
            (void)pc;
            if (profile.invocations == 0)
                continue;
            ++executed;
            if (!profile.sawIndirection)
                ++immutable;
            else if (!profile.footprintChanged)
                ++likely;
            else
                ++mut;
        }
        std::printf("%-12s | %4u %4u | %9u %9u | %9u %9u | %9u "
                    "%9u\n",
                    row.name, executed, row.regions, immutable,
                    row.immutable, likely, row.likely, mut,
                    row.mutable_);
    }
    std::printf("\n('sim' counts regions executed at least once in "
                "this run; 'ppr' is the paper's Table 1.)\n");
    return 0;
}
