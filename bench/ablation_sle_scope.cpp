/**
 * @file
 * Ablation C: CLEAR with in-core (SLE) versus out-of-core (HTM)
 * speculation (Sections 4.1 vs 4.4).
 *
 * With speculation confined to the ROB/LQ/SQ window, larger regions
 * cannot even be discovered and the fallback path dominates;
 * HTM-backed speculation lets discovery see the whole region. The
 * data-structure benchmarks fit either window; the STAMP-like ones
 * separate the two designs.
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main()
{
    WorkloadParams params;
    params.opsPerThread = 16;
    params.seed = 21;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        params.opsPerThread = static_cast<unsigned>(std::atoi(v));

    const std::vector<std::string> workloads = {
        "arrayswap", "mwobject", "bitcoin",  "hashmap",
        "genome",    "intruder", "vacation-l", "yada",
        "labyrinth", "sorted-list"};

    std::printf("Ablation C: CLEAR with SLE (in-core) vs HTM "
                "(out-of-core) speculation\n\n");
    std::printf("%-12s %12s %12s %10s %10s\n", "benchmark",
                "in-core", "out-of-core", "fb%% (sle)",
                "fb%% (htm)");

    for (const std::string &w : workloads) {
        double cycles[2];
        double fallback[2];
        for (int scope = 0; scope < 2; ++scope) {
            const SystemConfig cfg =
                makeConfigFromSpec(scope == 0 ? "C+sle" : "C+htm");
            const RunResult run = runOnce(cfg, w, params);
            cycles[scope] = static_cast<double>(run.cycles);
            fallback[scope] =
                100.0 * run.commitModeFractions()[static_cast<
                            unsigned>(ExecMode::Fallback)];
        }
        std::printf("%-12s %12.0f %12.0f %9.1f%% %9.1f%%\n",
                    w.c_str(), cycles[0], cycles[1], fallback[0],
                    fallback[1]);
    }
    return 0;
}
