/**
 * @file
 * Table 2: the baseline system configuration.
 *
 * Prints the simulated machine parameters next to the values the
 * paper lists, so any local modification is visible at a glance.
 */

#include <cstdio>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main()
{
    const SystemConfig cfg = makeBaselineConfig();

    std::printf("Table 2: Baseline system configuration\n");
    std::printf("=======================================\n\n");
    std::printf("Core       32-core out-of-order Icelake-like.\n");
    std::printf("           cores: %u (paper: 32)\n", cfg.numCores);
    std::printf("           fetch/decode/rename width: %u (paper: "
                "5)\n",
                cfg.core.fetchWidth);
    std::printf("           issue/commit width: %u (paper: 10)\n",
                cfg.core.issueWidth);
    std::printf("           ROB: %u uops (paper: 352)\n",
                cfg.core.robEntries);
    std::printf("           LQ: %u entries (paper: 128)\n",
                cfg.core.lqEntries);
    std::printf("           SQ: %u entries (paper: 72)\n",
                cfg.core.sqEntries);
    std::printf("           physical registers: %u (paper: 180)\n\n",
                cfg.core.physRegs);

    std::printf("L1 Data    %u sets x %u ways x %u B = %u KiB, "
                "%llu-cycle (paper: 48 KiB, 12-way, 1 cycle)\n",
                cfg.cache.l1Sets, cfg.cache.l1Ways, kLineBytes,
                cfg.cache.l1Sets * cfg.cache.l1Ways * kLineBytes /
                    1024,
                static_cast<unsigned long long>(
                    cfg.cache.l1Latency));
    std::printf("L2         %u sets x %u ways = %u KiB, %llu-cycle "
                "(paper: 512 KiB, 8-way, 10 cycles)\n",
                cfg.cache.l2Sets, cfg.cache.l2Ways,
                cfg.cache.l2Sets * cfg.cache.l2Ways * kLineBytes /
                    1024,
                static_cast<unsigned long long>(
                    cfg.cache.l2Latency));
    std::printf("L3         %u sets x %u ways = %u MiB, %llu-cycle "
                "(paper: 4 MiB, 16-way, 45 cycles)\n",
                cfg.cache.l3Sets, cfg.cache.l3Ways,
                cfg.cache.l3Sets * cfg.cache.l3Ways * kLineBytes /
                    (1024 * 1024),
                static_cast<unsigned long long>(
                    cfg.cache.l3Latency));
    std::printf("Memory     %llu-cycle access (paper: 80 cycles)\n",
                static_cast<unsigned long long>(
                    cfg.cache.memLatency));
    std::printf("Coherence  full-map MESI-style directory, %u sets "
                "(paper: 3-level MESI, directory coverage 800%%)\n\n",
                cfg.cache.dirSets);

    std::printf("HTM        requester-wins and PowerTM; best of "
                "1..10 retries before the fallback lock\n\n");

    std::printf("CLEAR structures (Section 5)\n");
    std::printf("           ERT: %u entries, fully associative\n",
                cfg.clear.ertEntries);
    std::printf("           ALT: %u entries (CAM, priority "
                "search)\n",
                cfg.clear.altEntries);
    std::printf("           CRT: %u entries, %u-way\n",
                cfg.clear.crtEntries, cfg.clear.crtWays);
    std::printf("           SQ-Full saturation: %u (2-bit "
                "counter)\n",
                cfg.clear.sqFullSaturation);

    // Storage overhead as computed in Section 5.
    const double indirection_bits = cfg.core.physRegs / 8.0;
    const double ert_bytes =
        cfg.clear.ertEntries * (1 + 64 + 1 + 1 + 2 + 4) / 8.0;
    const double alt_bytes =
        cfg.clear.altEntries * (1 + 58 + 1 + 1 + 1 + 1) / 8.0;
    const double crt_bytes = cfg.clear.crtEntries * (1 + 58 + 3) / 8.0;
    std::printf("           storage: %.1f B indirection bits + "
                "%.1f B ERT + %.1f B ALT + %.1f B CRT = %.1f B "
                "(paper: 988.5 B, < 1 KiB)\n",
                indirection_bits, ert_bytes, alt_bytes, crt_bytes,
                indirection_bits + ert_bytes + alt_bytes + crt_bytes);
    return 0;
}
