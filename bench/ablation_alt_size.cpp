/**
 * @file
 * Ablation A: sweep the ALT capacity (8..64 entries) under CLEAR
 * over requester-wins on the data-structure benchmarks.
 *
 * The ALT bounds the footprint that can be cacheline-locked; small
 * ALTs push mid-sized regions back to speculative retries, large
 * ALTs buy little once the common footprints fit (the paper sizes
 * it at 32 entries / 276 bytes).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main()
{
    WorkloadParams params;
    params.opsPerThread = 16;
    params.seed = 5;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        params.opsPerThread = static_cast<unsigned>(std::atoi(v));

    const std::vector<std::string> workloads = {
        "arrayswap", "bitcoin", "bst",   "deque",      "hashmap",
        "mwobject",  "queue",   "stack", "sorted-list"};
    const std::vector<unsigned> alt_sizes = {8, 16, 32, 64};

    std::printf("Ablation A: ALT capacity sweep (config C)\n\n");
    std::printf("%-12s", "benchmark");
    for (unsigned alt : alt_sizes)
        std::printf(" %7s%-3u", "alt=", alt);
    std::printf("   (cycles; locked-mode commit share)\n");

    for (const std::string &w : workloads) {
        std::printf("%-12s", w.c_str());
        for (unsigned alt : alt_sizes) {
            const SystemConfig cfg = makeConfigFromSpec(
                "C:altEntries=" + std::to_string(alt));
            const RunResult run = runOnce(cfg, w, params);
            const double locked_share =
                run.htm.commits
                    ? 100.0 *
                          (run.htm.commitsByMode[static_cast<
                               unsigned>(ExecMode::SCl)] +
                           run.htm.commitsByMode[static_cast<
                               unsigned>(ExecMode::NsCl)]) /
                          run.htm.commits
                    : 0.0;
            std::printf(" %7llu/%2.0f%%",
                        static_cast<unsigned long long>(run.cycles),
                        locked_share);
        }
        std::printf("\n");
    }
    return 0;
}
