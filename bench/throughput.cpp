/**
 * @file
 * Simulator throughput benchmark: the tracked perf trajectory.
 *
 * Runs the fig8-shaped sweep grid (workloads x B/P/C/W/A configs x
 * retry limits x seeds) point by point on the calling thread and
 * reports two throughput figures:
 *
 *  - sweep-points/sec: complete runOnce() simulations per second,
 *    the number that bounds every design-space-exploration sweep;
 *  - simulated-cycles/sec: simulated core cycles retired per
 *    wall-clock second, the classic discrete-event-simulator metric
 *    (robust against grids whose points simulate different spans).
 *
 * Each repetition runs the identical deterministic grid; the best
 * repetition is reported (minimum wall time), which is the standard
 * way to strip scheduler noise from a throughput figure. Results
 * are written to BENCH_throughput.json (clearsim-bench-v1) for
 * scripts/bench_ci.sh to gate regressions against a pinned
 * baseline; see docs/PERFORMANCE.md.
 *
 * Environment (validated like every other CLEARSIM_* knob):
 *   CLEARSIM_WORKLOADS / CLEARSIM_CONFIGS / CLEARSIM_RETRIES /
 *   CLEARSIM_SEEDS / CLEARSIM_OPS    grid override (defaults:
 *                                    all workloads, B,P,C,W,A,
 *                                    retries 1,4, 2 seeds, 16 ops)
 *   CLEARSIM_BENCH_REPS              timed repetitions (default 3)
 *   CLEARSIM_BENCH_WARMUP            warmup repetitions (default 1)
 *   CLEARSIM_BENCH_OUT               output path (default
 *                                    BENCH_throughput.json)
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "clearsim/clearsim.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"

using namespace clearsim;

namespace
{

std::vector<std::string>
splitList(const char *value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** The benchmark grid: fig8 cells at a CI-sized working set. */
struct Grid
{
    std::vector<std::string> workloads;
    std::vector<std::string> configs{"B", "P", "C", "W", "A"};
    std::vector<unsigned> retryLimits{1, 4};
    unsigned seeds = 2;
    unsigned ops = 16;

    std::size_t
    points() const
    {
        return workloads.size() * configs.size() *
               retryLimits.size() * seeds;
    }

    static Grid
    fromEnv()
    {
        Grid grid;
        grid.workloads = workloadNames();
        if (const char *v = std::getenv("CLEARSIM_WORKLOADS"))
            grid.workloads = splitList(v);
        if (const char *v = std::getenv("CLEARSIM_CONFIGS"))
            grid.configs = splitList(v);
        if (const char *v = std::getenv("CLEARSIM_RETRIES")) {
            grid.retryLimits.clear();
            for (const std::string &r : splitList(v))
                grid.retryLimits.push_back(
                    static_cast<unsigned>(parseUnsignedOrDie(
                        r.c_str(), "CLEARSIM_RETRIES", 0, 1000000)));
        }
        grid.seeds = static_cast<unsigned>(
            envUnsignedOr("CLEARSIM_SEEDS", grid.seeds, 1, 1000));
        grid.ops = static_cast<unsigned>(
            envUnsignedOr("CLEARSIM_OPS", grid.ops, 1, 100000000));
        if (grid.workloads.empty())
            fatal("CLEARSIM_WORKLOADS: empty workload list");
        if (grid.configs.empty())
            fatal("CLEARSIM_CONFIGS: empty config list");
        if (grid.retryLimits.empty())
            fatal("CLEARSIM_RETRIES: empty retry list");
        return grid;
    }
};

/** One timed pass over the whole grid. */
struct RepResult
{
    double seconds = 0.0;
    std::uint64_t simCycles = 0;
};

RepResult
runGrid(const Grid &grid)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();

    std::uint64_t cycles = 0;
    for (const std::string &workload : grid.workloads) {
        for (const std::string &config : grid.configs) {
            for (unsigned retries : grid.retryLimits) {
                SystemConfig cfg = makeConfigByName(config);
                cfg.maxRetries = retries;
                cfg.name = specWithRetryLimit(config, retries);
                for (unsigned s = 0; s < grid.seeds; ++s) {
                    WorkloadParams params;
                    params.opsPerThread = grid.ops;
                    params.seed =
                        params.seed + 1000003ull * s;
                    const RunResult run =
                        runOnce(cfg, workload, params);
                    cycles += run.cycles;
                }
            }
        }
    }

    RepResult rep;
    rep.seconds =
        std::chrono::duration<double>(Clock::now() - start)
            .count();
    rep.simCycles = cycles;
    return rep;
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ",";
        out += item;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const Grid grid = Grid::fromEnv();
    const unsigned reps = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_BENCH_REPS", 3, 1, 100));
    const unsigned warmup = static_cast<unsigned>(
        envUnsignedOr("CLEARSIM_BENCH_WARMUP", 1, 0, 100));
    std::string out_path = "BENCH_throughput.json";
    if (const char *v = std::getenv("CLEARSIM_BENCH_OUT"))
        out_path = v;
    if (argc > 1)
        out_path = argv[1];

    const std::size_t points = grid.points();
    std::printf("throughput bench: %zu points "
                "(%zu workloads x %zu configs x %zu retries x "
                "%u seeds, %u ops), %u warmup + %u timed reps\n",
                points, grid.workloads.size(), grid.configs.size(),
                grid.retryLimits.size(), grid.seeds, grid.ops,
                warmup, reps);

    for (unsigned i = 0; i < warmup; ++i)
        runGrid(grid);

    std::vector<RepResult> results;
    RepResult best;
    for (unsigned i = 0; i < reps; ++i) {
        const RepResult rep = runGrid(grid);
        if (i != 0 && rep.simCycles != results.front().simCycles) {
            // Identical grids must simulate identical work; a
            // drifting cycle count means nondeterminism, and a
            // nondeterministic benchmark gates nothing.
            panic("rep %u simulated %llu cycles, rep 0 %llu",
                  i,
                  static_cast<unsigned long long>(rep.simCycles),
                  static_cast<unsigned long long>(
                      results.front().simCycles));
        }
        results.push_back(rep);
        if (best.seconds == 0.0 || rep.seconds < best.seconds)
            best = rep;
        std::printf("  rep %u: %.3fs  %.1f points/s  "
                    "%.3g sim-cycles/s\n",
                    i, rep.seconds,
                    static_cast<double>(points) / rep.seconds,
                    static_cast<double>(rep.simCycles) /
                        rep.seconds);
    }

    const double pps = static_cast<double>(points) / best.seconds;
    const double cps =
        static_cast<double>(best.simCycles) / best.seconds;
    std::printf("best: %.3fs  %.1f sweep-points/s  "
                "%.4g simulated-cycles/s\n",
                best.seconds, pps, cps);

    std::string doc;
    JsonWriter json(doc);
    json.beginObject();
    json.key("schema");
    json.value("clearsim-bench-v1");
    json.key("bench");
    json.value("throughput");
    json.key("grid");
    json.beginObject();
    json.key("workloads");
    json.value(joinList(grid.workloads));
    json.key("configs");
    json.value(joinList(grid.configs));
    json.key("retry_limits");
    json.beginArray();
    for (unsigned r : grid.retryLimits)
        json.value(r);
    json.endArray();
    json.key("seeds");
    json.value(grid.seeds);
    json.key("ops");
    json.value(grid.ops);
    json.key("points");
    json.value(static_cast<std::uint64_t>(points));
    json.endObject();
    json.key("reps");
    json.beginArray();
    for (const RepResult &rep : results) {
        json.beginObject();
        json.key("seconds");
        json.value(rep.seconds);
        json.key("points_per_sec");
        json.value(static_cast<double>(points) / rep.seconds);
        json.key("sim_cycles_per_sec");
        json.value(static_cast<double>(rep.simCycles) /
                   rep.seconds);
        json.endObject();
    }
    json.endArray();
    json.key("total_sim_cycles");
    json.value(best.simCycles);
    json.key("best");
    json.beginObject();
    json.key("seconds");
    json.value(best.seconds);
    json.key("points_per_sec");
    json.value(pps);
    json.key("sim_cycles_per_sec");
    json.value(cps);
    json.endObject();
    json.endObject();

    std::ofstream out(out_path);
    if (!out)
        fatal("cannot write %s", out_path.c_str());
    out << doc << "\n";
    out.close();
    logStatus("[clearsim] wrote %s", out_path.c_str());
    return 0;
}
