/**
 * @file
 * Figure 12: commit breakdown per execution mode (speculative,
 * S-CL, NS-CL, fallback) for each benchmark and configuration.
 *
 * Expected shape (paper): mwobject commits almost entirely in
 * NS-CL under C/W; arrayswap about a third in NS-CL; bst commits
 * in S-CL while its tree is small; labyrinth stays mostly in
 * fallback.
 */

#include <cstdio>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 12: Commit breakdown per mode\n\n");
    std::printf("%-12s %-4s %10s %10s %10s %10s\n", "benchmark",
                "cfg", "spec", "s-cl", "ns-cl", "fallback");

    CsvTable csv;
    csv.header = {"benchmark", "config", "spec", "s_cl", "ns_cl",
                  "fallback"};
    double sum[4][4] = {};
    unsigned rows = 0;
    for (const std::string &w : opts.workloads) {
        for (unsigned ci = 0; ci < opts.configs.size(); ++ci) {
            const CellSummary &cell =
                sweep.at({w, opts.configs[ci]});
            const double total =
                cell.commits ? static_cast<double>(cell.commits)
                             : 1.0;
            double f[4];
            for (unsigned m = 0; m < 4; ++m) {
                f[m] = 100.0 * cell.commitsByMode[m] / total;
                sum[ci][m] += f[m];
            }
            std::printf("%-12s %-4s %9.1f%% %9.1f%% %9.1f%% "
                        "%9.1f%%\n",
                        w.c_str(), opts.configs[ci].c_str(), f[0],
                        f[1], f[2], f[3]);
            csv.rows.push_back({w, opts.configs[ci],
                                formatFixed(f[0], 2),
                                formatFixed(f[1], 2),
                                formatFixed(f[2], 2),
                                formatFixed(f[3], 2)});
        }
        ++rows;
        std::printf("\n");
    }
    maybeExportCsv("fig12_commit_modes", csv);
    std::printf("averages:\n");
    for (unsigned ci = 0; ci < opts.configs.size(); ++ci) {
        std::printf("%-12s %-4s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                    "average", opts.configs[ci].c_str(),
                    sum[ci][0] / rows, sum[ci][1] / rows,
                    sum[ci][2] / rows, sum[ci][3] / rows);
    }
    return 0;
}
