/**
 * @file
 * Figure 9: aborts per committed transaction for B, P, C and W.
 *
 * Expected shape (paper averages): B 7.9, P 6.6, C 1.6, W 2.3.
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 9: Aborts per committed transaction\n\n");
    std::printf("%-12s %8s %8s %8s %8s\n", "benchmark", "B", "P",
                "C", "W");

    CsvTable csv;
    csv.header = {"benchmark", "B", "P", "C", "W"};
    std::vector<double> avg[4];
    for (const std::string &w : opts.workloads) {
        double v[4];
        for (unsigned i = 0; i < 4; ++i) {
            const CellSummary &cell =
                sweep.at({w, opts.configs[i]});
            v[i] = cell.commits
                       ? static_cast<double>(cell.aborts) /
                             static_cast<double>(cell.commits)
                       : 0.0;
            avg[i].push_back(v[i]);
        }
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", w.c_str(),
                    v[0], v[1], v[2], v[3]);
        csv.rows.push_back({w, formatFixed(v[0], 3),
                            formatFixed(v[1], 3),
                            formatFixed(v[2], 3),
                            formatFixed(v[3], 3)});
    }
    maybeExportCsv("fig9_aborts_per_commit", csv);
    std::printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", "average",
                mean(avg[0]), mean(avg[1]), mean(avg[2]),
                mean(avg[3]));
    std::printf("\npaper averages: B 7.9, P 6.6, C 1.6, W 2.3\n");
    return 0;
}
