/**
 * @file
 * Figure 9: aborts per committed transaction, one column per
 * swept config (B, P, C, W and the adaptive A by default).
 *
 * Expected shape (paper averages): B 7.9, P 6.6, C 1.6, W 2.3.
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    // One column per swept config (B, P, C, W and the adaptive A
    // by default), so the figure follows CLEARSIM_CONFIGS.
    const std::size_t ncfg = opts.configs.size();

    std::printf("Figure 9: Aborts per committed transaction\n\n");
    std::printf("%-12s", "benchmark");
    for (const std::string &config : opts.configs)
        std::printf(" %8s", config.c_str());
    std::printf("\n");

    CsvTable csv;
    csv.header.push_back("benchmark");
    for (const std::string &config : opts.configs)
        csv.header.push_back(config);
    std::vector<std::vector<double>> avg(ncfg);
    for (const std::string &w : opts.workloads) {
        std::vector<std::string> row{w};
        std::printf("%-12s", w.c_str());
        for (std::size_t i = 0; i < ncfg; ++i) {
            const CellSummary &cell =
                sweep.at({w, opts.configs[i]});
            const double v =
                cell.commits
                    ? static_cast<double>(cell.aborts) /
                          static_cast<double>(cell.commits)
                    : 0.0;
            avg[i].push_back(v);
            std::printf(" %8.2f", v);
            row.push_back(formatFixed(v, 3));
        }
        std::printf("\n");
        csv.rows.push_back(std::move(row));
    }
    maybeExportCsv("fig9_aborts_per_commit", csv);
    std::printf("%-12s", "average");
    for (std::size_t i = 0; i < ncfg; ++i)
        std::printf(" %8.2f", mean(avg[i]));
    std::printf("\n");
    std::printf("\npaper averages: B 7.9, P 6.6, C 1.6, W 2.3\n");
    return 0;
}
