/**
 * @file
 * Figure 1: the ratio of retrying ARs whose accessed cachelines do
 * not change on the first retry (and fit in 32 lines).
 *
 * Methodology as in the paper's motivation section: run the
 * baseline HTM (profile mode records complete footprints of failed
 * attempts), and for every invocation that aborted its first
 * attempt compare the cacheline set of the first retry against the
 * first attempt. The paper reports an average of 60.2%.
 */

#include <cstdio>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main()
{
    WorkloadParams params;
    params.opsPerThread = 24;
    params.seed = 11;
    if (const char *v = std::getenv("CLEARSIM_OPS"))
        params.opsPerThread = static_cast<unsigned>(std::atoi(v));

    std::printf("Figure 1: ARs that do not change their accessed "
                "cachelines on the first retry\n\n");
    std::printf("%-12s %12s %12s %8s\n", "benchmark", "comparable",
                "immutable", "ratio");

    double sum_ratio = 0.0;
    unsigned counted = 0;
    for (const std::string &name : workloadNames()) {
        SystemConfig cfg = makeBaselineConfig();
        cfg.profileMode = true;
        const RunResult run = runOnce(cfg, name, params);

        std::uint64_t comparable = 0;
        std::uint64_t immutable = 0;
        for (const auto &[pc, profile] : run.htm.regions) {
            (void)pc;
            comparable += profile.comparableRetries;
            immutable += profile.immutableRetries;
        }
        // As in the paper, the ratio is over ARs whose first-retry
        // footprint is observable (conflict aborts); fallback-lock
        // and capacity aborts terminate execution before the
        // footprint completes and cannot be compared.
        const double ratio =
            comparable ? static_cast<double>(immutable) /
                             static_cast<double>(comparable)
                       : 0.0;
        if (comparable) {
            sum_ratio += ratio;
            ++counted;
        }
        std::printf("%-12s %12llu %12llu %8.2f\n", name.c_str(),
                    static_cast<unsigned long long>(comparable),
                    static_cast<unsigned long long>(immutable),
                    ratio);
    }
    std::printf("\naverage ratio over benchmarks with retries: "
                "%.2f (paper: 0.60)\n",
                counted ? sum_ratio / counted : 0.0);
    return 0;
}
