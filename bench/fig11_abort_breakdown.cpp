/**
 * @file
 * Figure 11: abort breakdown per type, for each benchmark and
 * configuration. Categories as in the paper, from cheap to
 * expensive: memory conflict, explicit fallback (lock found taken
 * at start), other fallback (lock taken mid-flight), others
 * (capacity, deviations, explicit aborts, ...).
 */

#include <cstdio>

#include "clearsim/clearsim.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 11: Abort breakdown per type "
                "(fractions of all aborts)\n\n");
    std::printf("%-12s %-4s %10s %10s %10s %10s %12s\n",
                "benchmark", "cfg", "mem-confl", "expl-fb",
                "other-fb", "others", "aborts/1k-commit");

    for (const std::string &w : opts.workloads) {
        for (const std::string &c : opts.configs) {
            const CellSummary &cell = sweep.at({w, c});
            const double total =
                cell.aborts ? static_cast<double>(cell.aborts) : 1.0;
            const double per_kcommit =
                cell.commits ? 1000.0 * cell.aborts / cell.commits
                             : 0.0;
            std::printf(
                "%-12s %-4s %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12.0f\n",
                w.c_str(), c.c_str(),
                100.0 * cell.abortsByCategory[0] / total,
                100.0 * cell.abortsByCategory[1] / total,
                100.0 * cell.abortsByCategory[2] / total,
                100.0 * cell.abortsByCategory[3] / total,
                per_kcommit);
        }
        std::printf("\n");
    }
    return 0;
}
