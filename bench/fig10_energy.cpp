/**
 * @file
 * Figure 10: energy consumption normalized to requester-wins.
 *
 * Expected shape (paper): C improves energy by 26.4% over B, W by
 * 30.6% — driven by shorter runtime (static) and fewer aborted
 * instructions (dynamic).
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"
#include "harness/csv_export.hh"
#include "harness/sweep_cache.hh"

using namespace clearsim;

int
main()
{
    const SweepOptions opts = SweepOptions::fromEnv();
    const SweepSummary sweep = sweepWithCache(opts);

    std::printf("Figure 10: Normalized energy consumption "
                "(B = 1.00)\n\n");
    std::printf("%-12s %8s %8s %8s %8s\n", "benchmark", "B", "P",
                "C", "W");

    CsvTable csv;
    csv.header = {"benchmark", "B", "P", "C", "W"};
    std::vector<double> norm_p, norm_c, norm_w;
    for (const std::string &w : opts.workloads) {
        const double base = sweep.at({w, "B"}).energy;
        const double p = sweep.at({w, "P"}).energy / base;
        const double c = sweep.at({w, "C"}).energy / base;
        const double wt = sweep.at({w, "W"}).energy / base;
        norm_p.push_back(p);
        norm_c.push_back(c);
        norm_w.push_back(wt);
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", w.c_str(),
                    1.0, p, c, wt);
        csv.rows.push_back({w, "1.0", formatFixed(p, 4),
                            formatFixed(c, 4), formatFixed(wt, 4)});
    }
    maybeExportCsv("fig10_energy", csv);
    std::printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", kGeomeanLabel,
                1.0, geomean(norm_p), geomean(norm_c),
                geomean(norm_w));
    std::printf("\npaper geomeans: C 0.74, W 0.69\n");
    return 0;
}
