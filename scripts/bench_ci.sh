#!/usr/bin/env bash
#
# Performance-regression gate for the throughput benchmark.
#
# Compares a clearsim-bench-v1 document against the pinned baseline
# in bench/baselines/ and fails when either metric (sweep-points/sec
# or simulated-cycles/sec) drops more than the tolerance below the
# baseline. Improvements always pass; refresh the baseline with
# --update after a deliberate speedup so the gate ratchets forward.
#
# Usage:
#   scripts/bench_ci.sh [--update] [current.json [baseline.json]]
#
#   current.json   bench output to check (default: BENCH_throughput.json
#                  in the working directory; if absent the script runs
#                  build/bench/throughput to produce it)
#   baseline.json  pinned reference (default:
#                  bench/baselines/BENCH_throughput.baseline.json)
#
# Environment:
#   BENCH_TOLERANCE_PCT  allowed regression percentage (default 10)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

update=0
if [[ "${1:-}" == "--update" ]]; then
    update=1
    shift
fi

current="${1:-BENCH_throughput.json}"
baseline="${2:-$repo_root/bench/baselines/BENCH_throughput.baseline.json}"
tolerance="${BENCH_TOLERANCE_PCT:-10}"

if [[ ! -f "$current" ]]; then
    bench_bin="$repo_root/build/bench/throughput"
    if [[ ! -x "$bench_bin" ]]; then
        echo "bench_ci: $current not found and $bench_bin not built" >&2
        exit 2
    fi
    echo "bench_ci: running $bench_bin -> $current"
    "$bench_bin" "$current"
fi

if [[ "$update" == 1 ]]; then
    cp "$current" "$baseline"
    echo "bench_ci: baseline updated from $current"
    exit 0
fi

if [[ ! -f "$baseline" ]]; then
    echo "bench_ci: baseline $baseline missing" >&2
    echo "bench_ci: run 'scripts/bench_ci.sh --update $current' to pin one" >&2
    exit 2
fi

python3 - "$baseline" "$current" "$tolerance" <<'EOF'
import json
import sys

baseline_path, current_path, tolerance_pct = sys.argv[1:4]
tolerance = float(tolerance_pct) / 100.0

def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "clearsim-bench-v1":
        sys.exit(f"bench_ci: {path} is not a clearsim-bench-v1 document")
    return doc

base = load(baseline_path)
cur = load(current_path)

if base["grid"] != cur["grid"]:
    sys.exit("bench_ci: grid mismatch between baseline and current run;\n"
             f"  baseline: {base['grid']}\n"
             f"  current:  {cur['grid']}\n"
             "  (re-pin the baseline when the bench grid changes)")

failed = False
for metric in ("points_per_sec", "sim_cycles_per_sec"):
    b = base["best"][metric]
    c = cur["best"][metric]
    floor = b * (1.0 - tolerance)
    delta = (c / b - 1.0) * 100.0
    status = "OK " if c >= floor else "FAIL"
    print(f"bench_ci: {status} {metric}: baseline {b:.4g}, "
          f"current {c:.4g} ({delta:+.1f}%, floor {floor:.4g})")
    if c < floor:
        failed = True

if failed:
    sys.exit(f"bench_ci: throughput regressed more than {tolerance_pct}% "
             "below the pinned baseline")
print("bench_ci: within tolerance")
EOF
