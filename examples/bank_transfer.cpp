/**
 * @file
 * Domain example: a bank with hot and cold accounts.
 *
 * Shows how to use the public API directly — build shared state in
 * simulated memory, write atomic-region bodies as coroutines over
 * TxContext, drive threads with System::runRegion — without going
 * through the Workload registry. A conservation invariant validates
 * atomicity at the end, and the run is repeated under all four
 * configurations to show how CLEAR turns the hot-account regions
 * into cacheline-locked re-executions.
 */

#include <cstdio>
#include <vector>

#include "clearsim/clearsim.hh"

using namespace clearsim;

namespace
{

constexpr unsigned kAccounts = 64;
constexpr unsigned kHotAccounts = 2; // the "exchange" accounts
constexpr unsigned kThreads = 16;
constexpr unsigned kTransfersPerThread = 40;

/** Move amount between two accounts; addresses precomputed. */
SimTask
transfer(TxContext &tx, Addr from, Addr to, std::uint64_t amount)
{
    TxValue from_balance = co_await tx.load(from);
    TxValue to_balance = co_await tx.load(to);
    co_await tx.store(from, from_balance - TxValue(amount));
    co_await tx.store(to, to_balance + TxValue(amount));
}

/** Audit: sum a fixed set of hot accounts into an audit cell. */
SimTask
auditHot(TxContext &tx, Addr accounts, Addr audit_cell)
{
    TxValue sum(0);
    for (unsigned a = 0; a < kHotAccounts; ++a)
        sum = sum + co_await tx.load(accounts + a * kLineBytes);
    co_await tx.store(audit_cell, sum);
}

SimTask
teller(System &sys, CoreId core, Addr accounts, Addr audit_cell,
       Rng rng)
{
    for (unsigned i = 0; i < kTransfersPerThread; ++i) {
        co_await delayFor(sys.queue(), 50 + rng.nextBelow(200));
        if (rng.nextBool(0.15)) {
            co_await sys.runRegion(
                core, 0x9100, [accounts, audit_cell](TxContext &tx) {
                    return auditHot(tx, accounts, audit_cell);
                });
            continue;
        }
        // Most transfers involve a hot account on one side.
        const std::uint64_t from =
            rng.nextBool(0.6) ? rng.nextBelow(kHotAccounts)
                              : rng.nextBelow(kAccounts);
        std::uint64_t to = rng.nextBelow(kAccounts);
        if (to == from)
            to = (to + 1) % kAccounts;
        const Addr from_addr = accounts + from * kLineBytes;
        const Addr to_addr = accounts + to * kLineBytes;
        const std::uint64_t amount = 1 + rng.nextBelow(50);
        co_await sys.runRegion(
            core, 0x9000,
            [from_addr, to_addr, amount](TxContext &tx) {
                return transfer(tx, from_addr, to_addr, amount);
            });
    }
}

} // namespace

int
main()
{
    std::printf("bank_transfer: %u tellers x %u transfers over %u "
                "accounts (%u hot)\n\n",
                kThreads, kTransfersPerThread, kAccounts,
                kHotAccounts);
    std::printf("%-4s %10s %10s %9s %9s %9s\n", "cfg", "cycles",
                "aborts", "ns-cl%", "s-cl%", "fallbk%");

    for (const char *preset : {"B", "P", "C", "W"}) {
        SystemConfig cfg = makeConfigByName(preset);
        cfg.numCores = kThreads;
        System sys(cfg, 2024);

        BackingStore &store = sys.mem().store();
        const Addr accounts = store.allocateLines(kAccounts);
        const Addr audit_cell = store.allocateLines(1);
        std::uint64_t total = 0;
        for (unsigned a = 0; a < kAccounts; ++a) {
            store.write(accounts + a * kLineBytes, 10'000);
            total += 10'000;
        }

        std::vector<SimTask> tellers;
        Rng rng(99);
        for (unsigned t = 0; t < kThreads; ++t) {
            tellers.push_back(teller(sys,
                                     static_cast<CoreId>(t),
                                     accounts, audit_cell,
                                     rng.fork()));
        }
        for (auto &task : tellers)
            task.start();
        const Cycle cycles = sys.runToCompletion();

        std::uint64_t final_total = 0;
        for (unsigned a = 0; a < kAccounts; ++a)
            final_total += store.read(accounts + a * kLineBytes);
        if (final_total != total) {
            std::fprintf(stderr,
                         "MONEY NOT CONSERVED under %s: %llu -> "
                         "%llu\n",
                         preset,
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(
                             final_total));
            return 1;
        }

        const HtmStats &st = sys.stats();
        const double commits =
            st.commits ? static_cast<double>(st.commits) : 1;
        std::printf(
            "%-4s %10llu %10llu %8.1f%% %8.1f%% %8.1f%%\n", preset,
            static_cast<unsigned long long>(cycles),
            static_cast<unsigned long long>(st.aborts),
            100.0 * st.commitsByMode[static_cast<unsigned>(
                        ExecMode::NsCl)] / commits,
            100.0 * st.commitsByMode[static_cast<unsigned>(
                        ExecMode::SCl)] / commits,
            100.0 * st.commitsByMode[static_cast<unsigned>(
                        ExecMode::Fallback)] / commits);
    }
    std::printf("\nAll configurations conserved the money supply; "
                "CLEAR commits the hot transfers in NS-CL.\n");
    return 0;
}
