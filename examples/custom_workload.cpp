/**
 * @file
 * Authoring a new workload against the Workload interface.
 *
 * Implements a tiny "ticket dispenser with statistics" benchmark
 * from scratch: a hot ticket counter plus a per-bucket histogram,
 * with a verify() conservation check — the same shape as the
 * built-in workloads, so it composes with runWorkloadThreads and
 * the System presets. Use this file as a template for porting your
 * own concurrent kernels onto clearsim.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "clearsim/clearsim.hh"

using namespace clearsim;

namespace
{

/** Take a ticket and record it in a histogram bucket. */
SimTask
takeTicket(TxContext &tx, Addr counter, Addr buckets,
           std::uint64_t num_buckets)
{
    TxValue ticket = co_await tx.load(counter);
    co_await tx.store(counter, ticket + TxValue(1));
    // The bucket address depends on the ticket value: a genuine
    // indirection, so CLEAR re-executes this region in S-CL mode.
    // The epoch shift keeps the footprint stable between retries
    // (a bucket change on retry would be a deviation, after which
    // CLEAR rightly marks the region non-discoverable).
    const Addr bucket = tx.toAddr(
        TxValue(buckets) +
        ((ticket >> 7) % TxValue(num_buckets)) *
            TxValue(kLineBytes));
    TxValue count = co_await tx.load(bucket);
    co_await tx.store(bucket, count + TxValue(1));
}

class TicketWorkload : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "tickets"; }
    unsigned numRegions() const override { return 1; }

    void
    init(System &sys) override
    {
        BackingStore &store = sys.mem().store();
        counter_ = store.allocateLines(1);
        buckets_ = store.allocateLines(kBuckets);
    }

    SimTask
    thread(System &sys, CoreId core) override
    {
        Rng rng = threadRng(core);
        const Addr counter = counter_;
        const Addr buckets = buckets_;
        for (unsigned op = 0; op < params_.opsPerThread; ++op) {
            co_await delayFor(sys.queue(), thinkTime(sys, rng));
            co_await sys.runRegion(
                core, 0xA000, [counter, buckets](TxContext &tx) {
                    return takeTicket(tx, counter, buckets,
                                      kBuckets);
                });
        }
    }

    std::vector<std::string>
    verify(System &sys) const override
    {
        const BackingStore &store =
            const_cast<System &>(sys).mem().store();
        std::vector<std::string> issues;
        const std::uint64_t tickets = store.read(counter_);
        std::uint64_t recorded = 0;
        for (unsigned b = 0; b < kBuckets; ++b)
            recorded += store.read(buckets_ + b * kLineBytes);
        const std::uint64_t expected =
            static_cast<std::uint64_t>(params_.threads) *
            params_.opsPerThread;
        if (tickets != expected)
            issues.push_back("tickets: counter lost updates");
        if (recorded != expected)
            issues.push_back("tickets: histogram lost updates");
        return issues;
    }

  private:
    static constexpr unsigned kBuckets = 8;
    Addr counter_ = 0;
    Addr buckets_ = 0;
};

} // namespace

int
main()
{
    WorkloadParams params;
    params.threads = 16;
    params.opsPerThread = 32;
    params.seed = 4242;

    std::printf("custom_workload: ticket dispenser, %u threads x "
                "%u tickets\n\n",
                params.threads, params.opsPerThread);
    std::printf("%-4s %10s %10s %9s %9s\n", "cfg", "cycles",
                "aborts/c", "s-cl%", "fallbk%");

    for (const char *preset : {"B", "P", "C", "W"}) {
        SystemConfig cfg = makeConfigByName(preset);
        cfg.numCores = params.threads;
        System sys(cfg, params.seed);
        TicketWorkload workload(params);
        const Cycle cycles = runWorkloadThreads(sys, workload);

        for (const std::string &issue : workload.verify(sys)) {
            std::fprintf(stderr, "INVARIANT VIOLATION: %s\n",
                         issue.c_str());
            return 1;
        }

        const HtmStats &st = sys.stats();
        const double commits =
            st.commits ? static_cast<double>(st.commits) : 1;
        std::printf("%-4s %10llu %10.2f %8.1f%% %8.1f%%\n", preset,
                    static_cast<unsigned long long>(cycles),
                    st.abortsPerCommit(),
                    100.0 * st.commitsByMode[static_cast<unsigned>(
                                ExecMode::SCl)] / commits,
                    100.0 * st.commitsByMode[static_cast<unsigned>(
                                ExecMode::Fallback)] / commits);
    }
    return 0;
}
