/**
 * @file
 * Contention study: how the transactional sorted list and BST scale
 * with thread count under the baseline HTM versus CLEAR.
 *
 * Uses the built-in workload registry and the harness runner — the
 * highest-level slice of the public API — and prints a scaling
 * table of cycles and aborts per commit.
 */

#include <cstdio>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main()
{
    std::printf("concurrent_set: sorted-list and bst scaling, "
                "B vs C\n\n");
    std::printf("%-12s %8s %14s %14s %10s\n", "workload", "threads",
                "B cycles", "C cycles", "speedup");

    for (const char *name : {"sorted-list", "bst"}) {
        for (unsigned threads : {4u, 8u, 16u, 32u}) {
            WorkloadParams params;
            params.threads = threads;
            params.opsPerThread = 24;
            params.seed = 77;

            SystemConfig base = makeBaselineConfig();
            SystemConfig clear_cfg = makeClearConfig();
            const RunResult b = runOnce(base, name, params);
            const RunResult c = runOnce(clear_cfg, name, params);

            std::printf("%-12s %8u %14llu %14llu %9.2fx\n", name,
                        threads,
                        static_cast<unsigned long long>(b.cycles),
                        static_cast<unsigned long long>(c.cycles),
                        static_cast<double>(b.cycles) /
                            static_cast<double>(c.cycles));
        }
        std::printf("\n");
    }
    std::printf("CLEAR's advantage grows with contention (more "
                "threads on the same structure).\n");
    return 0;
}
