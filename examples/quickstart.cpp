/**
 * @file
 * Quickstart: run one workload under the four evaluated
 * configurations (B = requester-wins, P = PowerTM, C = CLEAR over
 * requester-wins, W = CLEAR over PowerTM) and print the headline
 * metrics of the paper: execution time, aborts per commit, commit
 * modes, and fallback share.
 *
 * Usage: quickstart [workload] [ops-per-thread]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "clearsim/clearsim.hh"

using namespace clearsim;

int
main(int argc, char **argv)
{
    const std::string workload_name = argc > 1 ? argv[1] : "bitcoin";
    WorkloadParams params;
    params.opsPerThread =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 32;
    params.seed = 42;

    std::printf("workload: %s (%u threads x %u ops)\n\n",
                workload_name.c_str(), params.threads,
                params.opsPerThread);
    std::printf("%-4s %12s %10s %8s %8s %8s %8s\n", "cfg", "cycles",
                "aborts/c", "spec%", "s-cl%", "ns-cl%", "fallbk%");

    for (const char *cfg_name : {"B", "P", "C", "W"}) {
        SystemConfig cfg = makeConfigByName(cfg_name);
        System sys(cfg, params.seed);
        auto workload = makeWorkload(workload_name, params);
        const Cycle cycles = runWorkloadThreads(sys, *workload);

        const auto violations = workload->verify(sys);
        for (const std::string &v : violations)
            std::fprintf(stderr, "INVARIANT VIOLATION: %s\n",
                         v.c_str());

        const HtmStats &st = sys.stats();
        const double commits =
            st.commits ? static_cast<double>(st.commits) : 1.0;
        auto mode_pct = [&](ExecMode m) {
            return 100.0 *
                   st.commitsByMode[static_cast<unsigned>(m)] /
                   commits;
        };
        std::printf("%-4s %12llu %10.2f %7.1f%% %7.1f%% %7.1f%% "
                    "%7.1f%%\n",
                    cfg_name,
                    static_cast<unsigned long long>(cycles),
                    st.abortsPerCommit(),
                    mode_pct(ExecMode::Speculative),
                    mode_pct(ExecMode::SCl), mode_pct(ExecMode::NsCl),
                    mode_pct(ExecMode::Fallback));
        if (!violations.empty())
            return 1;
    }
    std::printf("\nLower cycles is better; C/W should cut "
                "aborts-per-commit and fallback share.\n");
    return 0;
}
